#include "core/parallel_search.h"

#include <algorithm>
#include <mutex>

#include "core/search_steps.h"
#include "util/combinations.h"
#include "util/executor.h"

namespace htd {

int ThreadBudget::Claim(int want) {
  if (want <= 0) return 0;
  int current = available_.load(std::memory_order_relaxed);
  while (current > 0) {
    int granted = std::min(current, want);
    if (available_.compare_exchange_weak(current, current - granted,
                                         std::memory_order_relaxed)) {
      return granted;
    }
  }
  return 0;
}

void ThreadBudget::Release(int count) {
  if (count > 0) available_.fetch_add(count, std::memory_order_relaxed);
}

SearchOutcome DriveCandidates(int n, int k, int first_limit, int extra_workers,
                              util::TaskGroup* group, int simulate_workers,
                              StatsCounters& stats,
                              const CandidateFn& try_candidate,
                              util::TraceParent trace) {
  const std::vector<util::SubsetChunk> chunks = util::MakeSubsetChunks(n, k, first_limit);
  if (chunks.empty()) return SearchOutcome::NotFound();

  if (extra_workers <= 0 || group == nullptr) {
    // Sequential: chunks in deterministic (size, first) order. The step
    // delta covers each candidate's full nested cost (see search_steps.h).
    // With simulate_workers > 1, per-chunk *effective* costs (nested
    // searches already collapsed to their own makespans) are list-scheduled
    // onto virtual workers, mirroring the dynamic chunk claiming of the real
    // parallel path; this search then collapses to the resulting makespan.
    const int workers = std::max(1, simulate_workers);
    std::vector<long> load(workers, 0);
    const long steps_before = CurrentSearchSteps();
    const long effective_before = CurrentEffectiveSteps();
    long accounted = 0;
    auto assign_chunk = [&](long cost) {
      auto least = std::min_element(load.begin(), load.end());
      *least += cost;
      accounted += cost;
    };
    auto account = [&] {
      // Any work not yet assigned to a chunk (the tail of an early exit).
      long total_effective = CurrentEffectiveSteps() - effective_before;
      assign_chunk(total_effective - accounted);
      long makespan = *std::max_element(load.begin(), load.end());
      stats.work_total.fetch_add(CurrentSearchSteps() - steps_before,
                                 std::memory_order_relaxed);
      stats.work_parallel.fetch_add(makespan, std::memory_order_relaxed);
      if (workers > 1) CollapseEffectiveSteps(effective_before + makespan);
    };
    for (const util::SubsetChunk& chunk : chunks) {
      const long chunk_start = CurrentEffectiveSteps();
      util::FixedFirstEnumerator enumerator(n, chunk.size, chunk.first);
      while (enumerator.Next()) {
        SearchOutcome outcome = try_candidate(enumerator.indices());
        if (outcome.status != SearchStatus::kNotFound) {
          account();
          return outcome;
        }
      }
      assign_chunk(CurrentEffectiveSteps() - chunk_start);
    }
    account();
    return SearchOutcome::NotFound();
  }

  // Parallel: slot tasks claim chunks from an atomic cursor; the first
  // kFound/kStopped outcome wins and stops everyone at the next candidate.
  const int num_workers = extra_workers + 1;
  std::atomic<size_t> next_chunk{0};
  std::atomic<int> done{0};  // 0 = running, 1 = found/stopped
  std::mutex result_mutex;
  SearchOutcome result = SearchOutcome::NotFound();
  std::vector<long> work(num_workers, 0);

  auto worker = [&](int slot) {
    // One span per worker: duration is the worker's whole share of this
    // level's search, so a trace shows how evenly the chunks divided.
    util::TraceScope span("sep_worker", trace, static_cast<uint64_t>(slot));
    const long steps_before = CurrentSearchSteps();
    while (done.load(std::memory_order_relaxed) == 0) {
      size_t chunk_index = next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (chunk_index >= chunks.size()) break;
      const util::SubsetChunk& chunk = chunks[chunk_index];
      util::FixedFirstEnumerator enumerator(n, chunk.size, chunk.first);
      while (enumerator.Next()) {
        if (done.load(std::memory_order_relaxed) != 0) {
          work[slot] = CurrentSearchSteps() - steps_before;
          return;
        }
        SearchOutcome outcome = try_candidate(enumerator.indices());
        if (outcome.status != SearchStatus::kNotFound) {
          {
            std::lock_guard<std::mutex> lock(result_mutex);
            // Keep the first decisive outcome; prefer kFound over kStopped so
            // a successful worker is not masked by a timeout racing in.
            if (result.status == SearchStatus::kNotFound ||
                (result.status == SearchStatus::kStopped &&
                 outcome.status == SearchStatus::kFound)) {
              result = std::move(outcome);
            }
            done.store(1, std::memory_order_relaxed);
          }
          work[slot] = CurrentSearchSteps() - steps_before;
          return;
        }
      }
    }
    work[slot] = CurrentSearchSteps() - steps_before;
  };

  // The extra slots go into a nested group so this call waits only on its
  // own tasks, never on sibling searches elsewhere in the flight. Slot 0
  // runs inline (the calling thread is a full participant); whatever the
  // fleet has idle steals the rest, and a stolen-late slot just finds the
  // chunk cursor drained.
  {
    util::TaskGroup local(*group);
    for (int t = 1; t < num_workers; ++t) {
      local.Spawn([&worker, t] { worker(t); });
    }
    local.Run([&worker] { worker(0); });
    local.Wait();
  }

  long total = 0;
  long max_work = 0;
  for (long w : work) {
    total += w;
    max_work = std::max(max_work, w);
  }
  stats.work_total.fetch_add(total, std::memory_order_relaxed);
  stats.work_parallel.fetch_add(max_work, std::memory_order_relaxed);
  return result;
}

}  // namespace htd
