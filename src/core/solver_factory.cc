#include "core/solver_factory.h"

#include <cstring>

#include "baselines/balsep_ghd.h"
#include "baselines/det_k_decomp.h"
#include "core/hybrid.h"
#include "core/log_k_decomp.h"
#include "core/log_k_decomp_basic.h"
#include "util/hash.h"

namespace htd {

namespace {

using util::HashCombine;

uint64_t HashString(uint64_t seed, const std::string& s) {
  uint64_t h = seed;
  for (unsigned char c : s) h = HashCombine(h, c);
  return HashCombine(h, s.size());
}

}  // namespace

std::vector<std::string> KnownSolverNames() {
  return {"logk", "logk-basic", "detk", "hybrid", "balsep-ghd"};
}

util::StatusOr<SolverFactoryFn> MakeSolverFactory(const std::string& name) {
  if (name == "logk") {
    return SolverFactoryFn([](const SolveOptions& options) -> std::unique_ptr<HdSolver> {
      return std::make_unique<LogKDecomp>(options);
    });
  }
  if (name == "logk-basic") {
    return SolverFactoryFn([](const SolveOptions& options) -> std::unique_ptr<HdSolver> {
      return std::make_unique<LogKDecompBasic>(options);
    });
  }
  if (name == "detk") {
    return SolverFactoryFn([](const SolveOptions& options) -> std::unique_ptr<HdSolver> {
      return std::make_unique<DetKDecomp>(options);
    });
  }
  if (name == "hybrid") {
    return SolverFactoryFn([](const SolveOptions& options) -> std::unique_ptr<HdSolver> {
      return MakeDefaultHybrid(options);
    });
  }
  if (name == "balsep-ghd") {
    return SolverFactoryFn([](const SolveOptions& options) -> std::unique_ptr<HdSolver> {
      return std::make_unique<BalSepGhd>(options);
    });
  }
  return util::Status::InvalidArgument("unknown solver name: '" + name +
                                       "' (known: logk, logk-basic, detk, hybrid, "
                                       "balsep-ghd)");
}

uint64_t SolverConfigDigest(const std::string& name, const SolveOptions& options) {
  uint64_t h = HashString(0x48544443464744ULL /* "HTDCFGD" */, name);
  h = HashCombine(h, static_cast<uint64_t>(options.hybrid_metric));
  uint64_t threshold_bits = 0;
  static_assert(sizeof(threshold_bits) == sizeof(options.hybrid_threshold));
  std::memcpy(&threshold_bits, &options.hybrid_threshold, sizeof(threshold_bits));
  h = HashCombine(h, threshold_bits);
  h = HashCombine(h, options.enable_cache ? 1 : 0);
  h = HashCombine(h, options.subproblem_store != nullptr ? 1 : 0);
  return h;
}

}  // namespace htd
