// Thread-safe negative cache for log-k-decomp subproblems.
//
// det-k-decomp owes much of its sequential speed to "extensive caching",
// which the paper singles out as the reason it parallelises badly (§1). This
// cache lets us measure that trade-off on our own engine: it records
// subproblems ⟨E', Sp, Conn⟩ for which the search space was exhausted, so an
// identical subproblem reached through a different (p, c) branch fails
// immediately.
//
// Soundness with allowed-edge sets: Decompose(H', Conn, A) failing only
// proves that no fragment exists *with λ-labels from A*. A later query with
// allowed set A ⊆ A_recorded is dominated (its search space is a subset), so
// a hit requires a recorded superset. Entries per key are kept as an
// antichain of ⊆-maximal allowed sets.
//
// All operations take one global mutex — deliberately so: the measured
// contention IS the phenomenon the paper describes. The ablation bench
// (bench/ablation_prep_cache) quantifies it.
#pragma once

#include <mutex>
#include <unordered_map>
#include <vector>

#include "decomp/extended_subhypergraph.h"
#include "util/bitset.h"

namespace htd {

class NegativeCache {
 public:
  /// True iff a recorded failure dominates the query: identical ⟨E', Sp,
  /// Conn⟩ and a recorded allowed-set ⊇ `allowed`.
  bool ContainsDominating(const ExtendedSubhypergraph& comp,
                          const util::DynamicBitset& conn,
                          const util::DynamicBitset& allowed) const;

  /// Records that ⟨comp, conn⟩ has no fragment with λ-labels from `allowed`.
  void Insert(const ExtendedSubhypergraph& comp, const util::DynamicBitset& conn,
              const util::DynamicBitset& allowed);

  /// Number of distinct ⟨E', Sp, Conn⟩ keys recorded.
  size_t size() const;

 private:
  struct Key {
    util::DynamicBitset edges;
    std::vector<int> specials;
    util::DynamicBitset conn;
    bool operator==(const Key& other) const {
      return edges == other.edges && specials == other.specials &&
             conn == other.conn;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& key) const {
      size_t h = key.edges.Hash() * 1000003u + key.conn.Hash();
      for (int s : key.specials) h = h * 31u + static_cast<size_t>(s) + 0x9e3779b9u;
      return h;
    }
  };

  mutable std::mutex mutex_;
  std::unordered_map<Key, std::vector<util::DynamicBitset>, KeyHash> entries_;
};

}  // namespace htd
