// Thread-safe negative cache for log-k-decomp subproblems.
//
// det-k-decomp owes much of its sequential speed to "extensive caching",
// which the paper singles out as the reason it parallelises badly (§1). This
// cache lets us measure that trade-off on our own engine: it records
// subproblems ⟨E', Sp, Conn⟩ for which the search space was exhausted, so an
// identical subproblem reached through a different (p, c) branch fails
// immediately.
//
// Soundness with allowed-edge sets: Decompose(H', Conn, A) failing only
// proves that no fragment exists *with λ-labels from A*. A later query with
// allowed set A ⊆ A_recorded is dominated (its search space is a subset), so
// a hit requires a recorded superset. Entries per key are kept as an
// antichain of ⊆-maximal allowed sets.
//
// Concurrency: the key space is striped over independently locked shards
// (the same pattern as service/result_cache.h), so parallel workers probing
// different subproblems never contend. The original implementation took one
// global mutex on purpose — the measured contention WAS the phenomenon the
// paper describes — but once the cross-instance subproblem store
// (service/subproblem_store.h) made cached search a first-class service
// component, the bottleneck stopped being an exhibit and started being a
// cost. The single-mutex story lives on in the benches: the cache-vs-
// parallelism trade-off in bench/ablation_prep_cache.cc, the shared-
// memoization follow-up in bench/ablation_shared_memo.cc.
#pragma once

#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "decomp/extended_subhypergraph.h"
#include "util/bitset.h"

namespace htd {

class NegativeCache {
 public:
  /// `num_shards` stripes (clamped to >= 1). The default matches
  /// service/result_cache.h; SolveOptions::cache_shards = 1 reproduces the
  /// historical global-mutex behaviour in measurements.
  explicit NegativeCache(int num_shards = 16);

  NegativeCache(const NegativeCache&) = delete;
  NegativeCache& operator=(const NegativeCache&) = delete;

  /// True iff a recorded failure dominates the query: identical ⟨E', Sp,
  /// Conn⟩ and a recorded allowed-set ⊇ `allowed`.
  bool ContainsDominating(const ExtendedSubhypergraph& comp,
                          const util::DynamicBitset& conn,
                          const util::DynamicBitset& allowed) const;

  /// Records that ⟨comp, conn⟩ has no fragment with λ-labels from `allowed`.
  void Insert(const ExtendedSubhypergraph& comp, const util::DynamicBitset& conn,
              const util::DynamicBitset& allowed);

  /// Number of distinct ⟨E', Sp, Conn⟩ keys recorded (summed over shards).
  size_t size() const;

  int num_shards() const { return static_cast<int>(shards_.size()); }

 private:
  struct Key {
    util::DynamicBitset edges;
    std::vector<int> specials;
    util::DynamicBitset conn;
    /// Computed once per operation (this is a per-recursion-node hot path):
    /// shard selection and the shard map both reuse it instead of
    /// re-hashing three bitsets. Equality stays structural.
    size_t hash = 0;

    void ComputeHash() {
      size_t h = edges.Hash() * 1000003u + conn.Hash();
      for (int s : specials) h = h * 31u + static_cast<size_t>(s) + 0x9e3779b9u;
      hash = h;
    }
    bool operator==(const Key& other) const {
      return edges == other.edges && specials == other.specials &&
             conn == other.conn;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& key) const { return key.hash; }
  };
  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<Key, std::vector<util::DynamicBitset>, KeyHash> entries;
  };

  Shard& ShardFor(const Key& key) const {
    return *shards_[key.hash % shards_.size()];
  }

  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace htd
