// Common solver interface and result types.
//
// Every decomposition method in this repository (det-k-decomp, log-k-decomp
// basic/optimised, the hybrid, the optimal solver) reports through these
// types so the benchmark harnesses and tests can treat them uniformly.
#pragma once

#include <atomic>
#include <memory>
#include <optional>
#include <string>

#include "decomp/decomposition.h"
#include "hypergraph/hypergraph.h"
#include "util/cancel.h"

namespace htd::service {
class SubproblemStore;
}  // namespace htd::service

namespace htd::util {
class TaskGroup;
}  // namespace htd::util

namespace htd {

/// Hybridisation metrics of §D.2. kNone disables the hybrid switch.
enum class HybridMetric { kNone, kEdgeCount, kWeightedCount };

struct SolveOptions {
  /// Width hint for the parallel separator search (1 = sequential, 0 = as
  /// wide as the executor allows). With the work-stealing executor this is
  /// no longer a thread count: it caps how many candidate-chunk tasks a
  /// solve offers concurrently, and free workers pick them up as the fleet
  /// drains — a solve admitted under load widens mid-flight by construction.
  int num_threads = 1;

  /// Task group the solve spawns its parallel-search chunks into (not
  /// owned). The scheduler lends one per flight, tied to the flight's
  /// cancel token and lane. When nullptr and num_threads != 1, LogKDecomp
  /// (and the hybrid through it) opens its own root group on the global
  /// executor. DetKDecomp is sequential and ignores it. Excluded from
  /// SolverConfigDigest — execution placement never affects answers.
  util::TaskGroup* task_group = nullptr;

  /// Optional cooperative cancellation (timeouts); may be nullptr.
  util::CancelToken* cancel = nullptr;

  /// If set, Solve() validates the constructed HD before returning and
  /// reports an internal error on failure. Used by tests.
  bool validate_result = false;

  /// Hybrid strategy: below `hybrid_threshold` of `hybrid_metric`, subproblems
  /// are handed to det-k-decomp (paper §D.2).
  HybridMetric hybrid_metric = HybridMetric::kNone;
  double hybrid_threshold = 0.0;

  /// Subproblems smaller than this are never parallelised (thread start-up
  /// would dominate).
  int parallel_min_size = 12;

  /// Negative subproblem cache for log-k-decomp (core/negative_cache.h).
  /// Off by default: the paper's design point is cache-free parallel search;
  /// enabling it trades the det-k-style sequential win for mutex contention
  /// (measured in the ablation bench).
  bool enable_cache = false;
  /// Mutex stripes of that cache; 1 reproduces the historical global-mutex
  /// variant (the contention exhibit of bench/ablation_prep_cache.cc).
  int cache_shards = 16;

  /// If true, the separator search runs sequentially but computes the
  /// makespan its chunk scheduling would achieve on `num_threads` workers
  /// (reported via work_parallel). Used to measure parallel-partition
  /// quality on machines without enough physical cores (DESIGN.md §4).
  bool simulate_partition = false;

  /// Cross-instance subproblem memoization (service/subproblem_store.h).
  /// Not owned; one store is meant to be shared by many solves, possibly
  /// concurrently — the store stripes its own locking. nullptr = off.
  /// LogKDecomp, DetKDecomp, and the hybrid read and write it;
  /// LogKDecompBasic only reads (see the store header's soundness notes).
  service::SubproblemStore* subproblem_store = nullptr;

  /// Trace parentage for per-recursion-level separator-search spans
  /// (util/trace.h). Zero = this solve is not part of a traced request.
  /// Excluded from SolverConfigDigest — tracing never affects answers.
  uint64_t trace_parent = 0;
  uint64_t trace_root = 0;
};

/// Aggregate counters reported by a solve call.
struct SolveStats {
  long separators_tried = 0;  ///< candidate λ-labels examined
  long recursive_calls = 0;   ///< Decomp invocations
  int max_recursion_depth = 0;
  long cache_hits = 0;          ///< det-k negative-cache hits
  long detk_subproblems = 0;    ///< hybrid hand-offs to det-k-decomp
  /// Cross-instance subproblem store (service/subproblem_store.h) hits:
  /// dominated failures short-circuited / fragments reused without search.
  long store_negative_hits = 0;
  long store_positive_hits = 0;
  /// Parallel-scaling accounting (DESIGN.md §4.3): total candidates vs. the
  /// per-search maximum over workers, summed. Their ratio estimates the
  /// speedup the search-space partitioning achieves with perfect cores.
  long work_total = 0;
  long work_parallel = 0;
  double seconds = 0.0;
};

/// Thread-safe counters; snapshotted into SolveStats at the end of a run.
struct StatsCounters {
  std::atomic<long> separators_tried{0};
  std::atomic<long> recursive_calls{0};
  std::atomic<int> max_depth{0};
  std::atomic<long> cache_hits{0};
  std::atomic<long> detk_subproblems{0};
  std::atomic<long> store_negative_hits{0};
  std::atomic<long> store_positive_hits{0};
  std::atomic<long> work_total{0};
  std::atomic<long> work_parallel{0};

  void UpdateMaxDepth(int depth) {
    int current = max_depth.load(std::memory_order_relaxed);
    while (depth > current &&
           !max_depth.compare_exchange_weak(current, depth,
                                            std::memory_order_relaxed)) {
    }
  }

  SolveStats Snapshot() const {
    SolveStats s;
    s.separators_tried = separators_tried.load();
    s.recursive_calls = recursive_calls.load();
    s.max_recursion_depth = max_depth.load();
    s.cache_hits = cache_hits.load();
    s.detk_subproblems = detk_subproblems.load();
    s.store_negative_hits = store_negative_hits.load();
    s.store_positive_hits = store_positive_hits.load();
    s.work_total = work_total.load();
    s.work_parallel = work_parallel.load();
    return s;
  }
};

enum class Outcome {
  kYes,        ///< hw(H) ≤ k; decomposition attached (for constructing solvers)
  kNo,         ///< proven: no HD of width ≤ k exists
  kCancelled,  ///< stopped by timeout/cancellation; no answer
  kError,      ///< internal failure (e.g. validate_result found a bad HD)
};

struct SolveResult {
  Outcome outcome = Outcome::kCancelled;
  std::optional<Decomposition> decomposition;
  SolveStats stats;
};

/// Interface of width-parameterised decomposition solvers.
class HdSolver {
 public:
  virtual ~HdSolver() = default;

  /// Decides hw(H) ≤ k; on kYes attaches a width-≤k HD (unless the solver is
  /// decision-only, which its documentation states).
  virtual SolveResult Solve(const Hypergraph& graph, int k) = 0;

  virtual std::string name() const = 0;
};

/// Result of the optimal-width protocol.
struct OptimalRun {
  Outcome outcome = Outcome::kCancelled;  ///< kYes: width is optimal and proven
  int width = -1;
  std::optional<Decomposition> decomposition;
  SolveStats stats;   ///< accumulated over all k probed
  double seconds = 0.0;
};

/// The paper's "solved" protocol: probe k = 1, 2, ... until Solve returns
/// kYes; every smaller k returned kNo, so the width is proven optimal.
/// Stops with kCancelled if any probe is cancelled, kNo if k exceeds max_k.
OptimalRun FindOptimalWidth(HdSolver& solver, const Hypergraph& graph, int max_k);

}  // namespace htd
