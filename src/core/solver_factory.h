// Name-based solver construction.
//
// The benchmark harnesses and the service layer both need to build solvers
// from a configuration value rather than a hard-coded type. This registry
// maps the stable names used in CLIs, manifests, and cache keys to factories
// over the solvers of this repository:
//
//   "logk"        LogKDecomp        (paper Algorithm 2, optimised)
//   "logk-basic"  LogKDecompBasic   (paper Algorithm 1)
//   "detk"        DetKDecomp        (Gottlob & Samer baseline)
//   "hybrid"      log-k ➞ det-k hybrid at the corpus-tuned threshold (§D.2)
//   "balsep-ghd"  BalSepGhd         (balanced-separator GHD baseline)
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/solver.h"
#include "util/status.h"

namespace htd {

/// Fresh-solver factory; matches bench::SolverFactory so harnesses can share.
using SolverFactoryFn = std::function<std::unique_ptr<HdSolver>(const SolveOptions&)>;

/// The names accepted by MakeSolverFactory, in presentation order.
std::vector<std::string> KnownSolverNames();

/// Resolves a solver name to a factory; kInvalidArgument for unknown names.
util::StatusOr<SolverFactoryFn> MakeSolverFactory(const std::string& name);

/// Stable 64-bit digest of the configuration axes that change what a solve
/// can return (solver identity, hybrid strategy, subproblem caching — both
/// the per-run negative cache and the presence of a cross-instance
/// subproblem store, which can swap one valid decomposition for another).
/// Used as the config component of result-cache keys; deliberately EXCLUDES
/// execution-only knobs (num_threads, cancel, validate_result,
/// parallel_min_size, simulate_partition) so e.g. a 1-thread and an 8-thread
/// run share cache entries.
uint64_t SolverConfigDigest(const std::string& name, const SolveOptions& options);

}  // namespace htd
