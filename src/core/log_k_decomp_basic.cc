#include "core/log_k_decomp_basic.h"

#include <algorithm>
#include <vector>

#include "service/subproblem_store.h"
#include "util/combinations.h"
#include "util/timer.h"

namespace htd {
namespace {

enum class Tri { kTrue, kFalse, kStopped };

// Recursive state of one Algorithm 1 run.
class BasicEngine {
 public:
  BasicEngine(const Hypergraph& graph, SpecialEdgeRegistry& registry, int k,
              const SolveOptions& options, StatsCounters& stats)
      : graph_(graph),
        registry_(registry),
        k_(k),
        options_(options),
        stats_(stats),
        all_edges_(graph.AllEdges()) {}

  // Main program, lines 1-10: RootLoop over λ(r).
  Tri Run() {
    ExtendedSubhypergraph full = ExtendedSubhypergraph::FullGraph(graph_);
    std::vector<int> all_edges;
    for (int e = 0; e < graph_.num_edges(); ++e) all_edges.push_back(e);
    const int n = graph_.num_edges();

    std::vector<int> lambda_root;
    for (const util::SubsetChunk& chunk : util::MakeSubsetChunks(n, k_, n)) {
      util::FixedFirstEnumerator enumerator(n, chunk.size, chunk.first);
      while (enumerator.Next()) {
        if (ShouldStop()) return Tri::kStopped;
        stats_.separators_tried.fetch_add(1, std::memory_order_relaxed);
        lambda_root.assign(enumerator.indices().begin(), enumerator.indices().end());
        util::DynamicBitset root_union = graph_.UnionOfEdges(lambda_root);
        ComponentSplit split = SplitComponents(graph_, registry_, full, root_union);
        bool all_ok = true;
        for (size_t i = 0; i < split.components.size(); ++i) {
          util::DynamicBitset conn = split.component_vertices[i] & root_union;
          Tri sub = Decomp(split.components[i], conn, 1);
          if (sub == Tri::kStopped) return sub;
          if (sub == Tri::kFalse) {
            all_ok = false;
            break;  // reject this root
          }
        }
        if (all_ok) return Tri::kTrue;
      }
    }
    return Tri::kFalse;  // exhausted search space
  }

 private:
  bool ShouldStop() const {
    return options_.cancel != nullptr && options_.cancel->ShouldStop();
  }

  // Function Decomp, lines 11-40.
  Tri Decomp(const ExtendedSubhypergraph& comp, const util::DynamicBitset& conn,
             int depth) {
    stats_.recursive_calls.fetch_add(1, std::memory_order_relaxed);
    stats_.UpdateMaxDepth(depth);
    if (ShouldStop()) return Tri::kStopped;
    // Base cases, lines 12-15.
    if (comp.edge_count <= k_ && comp.specials.empty()) return Tri::kTrue;
    if (comp.edge_count == 0 && comp.specials.size() == 1) return Tri::kTrue;

    // Cross-instance subproblem store — consume-only. Either polarity is a
    // genuine fact about fragment existence, and Algorithm 1's correctness
    // only needs its sub-answers to mean exactly that. Its own exhaustion is
    // NOT inserted: the algorithm as printed searches a normal-form-
    // restricted space, so "basic found nothing" is weaker than "no
    // fragment exists" (see service/subproblem_store.h). Algorithm 1 has no
    // allowed-set either — its λ candidates range over all of E(H).
    if (service::SubproblemStore* store = options_.subproblem_store;
        store != nullptr && store->ShouldProbe(comp)) {
      service::SubproblemStore::Key store_key = service::SubproblemStore::MakeKey(
          graph_, registry_, comp, conn, all_edges_, k_);
      switch (store->Lookup(store_key, graph_, /*fragment=*/nullptr)) {
        case service::SubproblemStore::Hit::kNegative:
          stats_.store_negative_hits.fetch_add(1, std::memory_order_relaxed);
          return Tri::kFalse;
        case service::SubproblemStore::Hit::kPositive:
          stats_.store_positive_hits.fetch_add(1, std::memory_order_relaxed);
          return Tri::kTrue;
        case service::SubproblemStore::Hit::kMiss:
          break;
      }
    }

    const int total = comp.size();
    const util::DynamicBitset comp_vertices = VerticesOf(graph_, registry_, comp);
    // λ candidates range over all of H in Algorithm 1; edges not touching the
    // component are useless in every check, so we restrict to those (a pure
    // pruning that does not change the explored outcomes).
    std::vector<int> candidates;
    for (int e = 0; e < graph_.num_edges(); ++e) {
      if (graph_.edge_vertices(e).Intersects(comp_vertices)) candidates.push_back(e);
    }
    const int n = static_cast<int>(candidates.size());

    std::vector<int> lambda_parent, lambda_child;
    // ParentLoop, lines 16-23.
    for (const util::SubsetChunk& pchunk : util::MakeSubsetChunks(n, k_, n)) {
      util::FixedFirstEnumerator parent_enum(n, pchunk.size, pchunk.first);
      while (parent_enum.Next()) {
        if (ShouldStop()) return Tri::kStopped;
        stats_.separators_tried.fetch_add(1, std::memory_order_relaxed);
        lambda_parent.clear();
        for (int idx : parent_enum.indices()) lambda_parent.push_back(candidates[idx]);
        util::DynamicBitset parent_union = graph_.UnionOfEdges(lambda_parent);
        ComponentSplit parent_split =
            SplitComponents(graph_, registry_, comp, parent_union);
        int down = parent_split.FindOversized(total);
        if (down < 0) continue;  // line 21
        const ExtendedSubhypergraph& comp_down = parent_split.components[down];
        const util::DynamicBitset& down_vertices = parent_split.component_vertices[down];
        if (!(down_vertices & conn).IsSubsetOf(parent_union)) continue;  // line 22

        // ChildLoop, lines 24-39.
        for (const util::SubsetChunk& cchunk : util::MakeSubsetChunks(n, k_, n)) {
          util::FixedFirstEnumerator child_enum(n, cchunk.size, cchunk.first);
          while (child_enum.Next()) {
            if (ShouldStop()) return Tri::kStopped;
            stats_.separators_tried.fetch_add(1, std::memory_order_relaxed);
            lambda_child.clear();
            for (int idx : child_enum.indices()) lambda_child.push_back(candidates[idx]);
            util::DynamicBitset child_union = graph_.UnionOfEdges(lambda_child);
            util::DynamicBitset chi_child = child_union & down_vertices;  // line 25
            if (!(down_vertices & parent_union).IsSubsetOf(chi_child)) continue;
            ComponentSplit down_split =
                SplitComponents(graph_, registry_, comp_down, chi_child);  // line 28
            if (down_split.MaxComponentSize() * 2 > total) continue;       // line 29

            bool children_ok = true;
            for (size_t i = 0; i < down_split.components.size(); ++i) {
              util::DynamicBitset sub_conn =
                  down_split.component_vertices[i] & chi_child;
              Tri sub = Decomp(down_split.components[i], sub_conn, depth + 1);
              if (sub == Tri::kStopped) return sub;
              if (sub == Tri::kFalse) {
                children_ok = false;
                break;  // line 34: reject child
              }
            }
            if (!children_ok) continue;
            if (chi_child.None()) continue;  // cannot form a special edge

            ExtendedSubhypergraph comp_up;  // lines 35-36
            comp_up.edges = comp.edges - comp_down.edges;
            comp_up.edge_count = comp.edge_count - comp_down.edge_count;
            for (int s : comp.specials) {
              if (std::find(comp_down.specials.begin(), comp_down.specials.end(), s) ==
                  comp_down.specials.end()) {
                comp_up.specials.push_back(s);
              }
            }
            comp_up.specials.push_back(registry_.Add(chi_child, lambda_child));

            Tri up = Decomp(comp_up, conn, depth + 1);  // line 37
            if (up == Tri::kStopped) return up;
            if (up == Tri::kFalse) continue;  // line 38: reject child
            return Tri::kTrue;                // line 39
          }
        }
      }
    }
    return Tri::kFalse;  // line 40: exhausted search space
  }

  const Hypergraph& graph_;
  SpecialEdgeRegistry& registry_;
  const int k_;
  const SolveOptions& options_;
  StatsCounters& stats_;
  const util::DynamicBitset all_edges_;
};

}  // namespace

SolveResult LogKDecompBasic::Solve(const Hypergraph& graph, int k) {
  util::WallTimer timer;
  SolveResult result;
  if (graph.num_edges() == 0) {
    result.outcome = Outcome::kYes;
    result.stats.seconds = timer.ElapsedSeconds();
    return result;
  }
  StatsCounters counters;
  SpecialEdgeRegistry registry(graph.num_vertices());
  BasicEngine engine(graph, registry, k, options_, counters);
  Tri outcome = engine.Run();
  result.stats = counters.Snapshot();
  result.stats.seconds = timer.ElapsedSeconds();
  result.outcome = outcome == Tri::kTrue    ? Outcome::kYes
                   : outcome == Tri::kFalse ? Outcome::kNo
                                            : Outcome::kCancelled;
  return result;
}

}  // namespace htd
