// Hybrid log-k-decomp ➞ det-k-decomp solver construction (paper §D.2).
//
// log-k-decomp splits the instance into balanced subproblems; once a
// subproblem's complexity metric falls below the threshold, det-k-decomp
// finishes it. Because the subproblems are independent, this effectively
// runs the inherently sequential det-k-decomp in parallel — the effect the
// paper highlights ("we can use an inherently single-threaded algorithm
// effectively in parallel because we are able to create balanced
// subproblems").
//
// Metrics (on a subproblem H' with width parameter k):
//   EdgeCount(H')     = |E'| + |Sp|
//   WeightedCount(H') = (|E'| + |Sp|) * k / avg-arity(E')
//
// The paper's best configuration — used as the headline "log-k-decomp
// Hybrid" of Table 1 — is WeightedCount with threshold 400 (Table 2). That
// value is calibrated to HyperBench's instance sizes (up to thousands of
// edges); this repository's offline corpus tops out around 150 edges, so the
// default below is re-tuned on the corpus exactly as the paper tuned its
// thresholds on HyperBench (Table 2's bench sweeps the neighbourhood).
#pragma once

#include <memory>

#include "core/log_k_decomp.h"
#include "core/solver.h"

namespace htd {

inline constexpr double kDefaultWeightedCountThreshold = 120.0;

/// Builds the hybrid solver; `base` supplies threads / cancellation options.
std::unique_ptr<HdSolver> MakeHybridSolver(
    HybridMetric metric = HybridMetric::kWeightedCount,
    double threshold = kDefaultWeightedCountThreshold, SolveOptions base = {});

/// The headline configuration: WeightedCount at the corpus-tuned default
/// threshold (the analogue of the paper's T = 400 on HyperBench).
std::unique_ptr<HdSolver> MakeDefaultHybrid(SolveOptions base = {});

}  // namespace htd
