#include "core/negative_cache.h"

#include <algorithm>

namespace htd {

bool NegativeCache::ContainsDominating(const ExtendedSubhypergraph& comp,
                                       const util::DynamicBitset& conn,
                                       const util::DynamicBitset& allowed) const {
  Key key{comp.edges, comp.specials, conn};
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(key);
  if (it == entries_.end()) return false;
  for (const util::DynamicBitset& recorded : it->second) {
    if (allowed.IsSubsetOf(recorded)) return true;
  }
  return false;
}

void NegativeCache::Insert(const ExtendedSubhypergraph& comp,
                           const util::DynamicBitset& conn,
                           const util::DynamicBitset& allowed) {
  Key key{comp.edges, comp.specials, conn};
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<util::DynamicBitset>& recorded = entries_[key];
  for (const util::DynamicBitset& existing : recorded) {
    if (allowed.IsSubsetOf(existing)) return;  // already dominated
  }
  // Keep the antichain: drop entries the new set dominates.
  recorded.erase(std::remove_if(recorded.begin(), recorded.end(),
                                [&](const util::DynamicBitset& existing) {
                                  return existing.IsSubsetOf(allowed);
                                }),
                 recorded.end());
  recorded.push_back(allowed);
}

size_t NegativeCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

}  // namespace htd
