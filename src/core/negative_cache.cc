#include "core/negative_cache.h"

#include <algorithm>

namespace htd {

NegativeCache::NegativeCache(int num_shards) {
  num_shards = std::max(1, num_shards);
  shards_.reserve(num_shards);
  for (int i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

bool NegativeCache::ContainsDominating(const ExtendedSubhypergraph& comp,
                                       const util::DynamicBitset& conn,
                                       const util::DynamicBitset& allowed) const {
  Key key{comp.edges, comp.specials, conn};
  key.ComputeHash();
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.entries.find(key);
  if (it == shard.entries.end()) return false;
  for (const util::DynamicBitset& recorded : it->second) {
    if (allowed.IsSubsetOf(recorded)) return true;
  }
  return false;
}

void NegativeCache::Insert(const ExtendedSubhypergraph& comp,
                           const util::DynamicBitset& conn,
                           const util::DynamicBitset& allowed) {
  Key key{comp.edges, comp.specials, conn};
  key.ComputeHash();
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  std::vector<util::DynamicBitset>& recorded = shard.entries[key];
  for (const util::DynamicBitset& existing : recorded) {
    if (allowed.IsSubsetOf(existing)) return;  // already dominated
  }
  // Keep the antichain: drop entries the new set dominates.
  recorded.erase(std::remove_if(recorded.begin(), recorded.end(),
                                [&](const util::DynamicBitset& existing) {
                                  return existing.IsSubsetOf(allowed);
                                }),
                 recorded.end());
  recorded.push_back(allowed);
}

size_t NegativeCache::size() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->entries.size();
  }
  return total;
}

}  // namespace htd
