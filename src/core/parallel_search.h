// Parallel candidate-separator search (paper §D.1).
//
// The search space of λ-labels is partitioned into (size, first-element)
// chunks; workers claim chunks from an atomic counter and run the full
// candidate check — including nested recursion — independently. There is no
// other inter-thread communication, which is why the paper observes linear
// scaling: the first worker to find a fragment wins, the rest drain out at
// the next candidate boundary.
//
// This file owns no threads. The parallel path spawns its slot workers as
// tasks into the caller's util::TaskGroup on the fleet-wide work-stealing
// executor (util/executor.h) and helps drain them inline; how many actually
// run concurrently depends on how busy the fleet is at that moment, which is
// what lets a lone solve widen to every core as the queue drains.
//
// A solve-wide ThreadBudget bounds how many slot tasks are *offered* per
// search level (a width hint, not a fork count), so deep recursions don't
// flood the executor with more tasks than the solve was asked to use.
#pragma once

#include <atomic>
#include <functional>
#include <vector>

#include "core/search_types.h"
#include "core/solver.h"
#include "util/executor.h"
#include "util/trace.h"

namespace htd {

class ThreadBudget {
 public:
  /// `extra_workers` = slot tasks available beyond the calling thread.
  explicit ThreadBudget(int extra_workers) : available_(std::max(0, extra_workers)) {}

  /// Claims up to `want` extra slots; returns how many were granted.
  int Claim(int want);
  /// Returns previously claimed slots to the budget.
  void Release(int count);

 private:
  std::atomic<int> available_;
};

/// Signature of a candidate check: receives the candidate's indices into the
/// caller's candidate-edge list. kNotFound means "this candidate fails";
/// kFound/kStopped end the whole search.
using CandidateFn = std::function<SearchOutcome(const std::vector<int>&)>;

/// Tries all subsets S of {0..n-1} with 1 ≤ |S| ≤ k and min(S) < first_limit
/// on 1 + extra_workers slot tasks. With extra_workers > 0, `group` must be
/// non-null: the extra slots are spawned into a nested task group under it
/// and the calling thread drains the group inline (work-stealing workers
/// pick up whatever it hasn't started yet). Records search-step work into
/// `stats`: work_total accumulates every step, work_parallel the longest
/// slot's share per search (see SolveStats).
///
/// `simulate_workers` (> 1, only meaningful with extra_workers == 0) runs the
/// search sequentially but additionally computes the makespan the solver's
/// own chunk-scheduling discipline would achieve on that many workers —
/// chunks are list-scheduled in claim order onto the least-loaded virtual
/// worker, exactly mirroring the dynamic chunk claiming of the real parallel
/// path. work_parallel then records the simulated makespan. This is how the
/// Figure 1 harness demonstrates the paper's scaling argument on single-core
/// hardware (DESIGN.md §4, substitution 3).
///
/// `trace` parents one "sep_worker" span per slot task (tagged with its
/// slot) under the caller's per-level separator-search span; an all-zero
/// TraceParent (the default) records nothing.
SearchOutcome DriveCandidates(int n, int k, int first_limit, int extra_workers,
                              util::TaskGroup* group, int simulate_workers,
                              StatsCounters& stats,
                              const CandidateFn& try_candidate,
                              util::TraceParent trace = {});

}  // namespace htd
