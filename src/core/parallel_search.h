// Parallel candidate-separator search (paper §D.1).
//
// The search space of λ-labels is partitioned into (size, first-element)
// chunks; workers claim chunks from an atomic counter and run the full
// candidate check — including nested recursion — independently. There is no
// other inter-thread communication, which is why the paper observes linear
// scaling: the first worker to find a fragment wins, the rest drain out at
// the next candidate boundary.
//
// A solve-wide ThreadBudget caps the total number of live workers, so nested
// parallel searches never oversubscribe the machine.
#pragma once

#include <atomic>
#include <functional>
#include <vector>

#include "core/search_types.h"
#include "core/solver.h"
#include "util/trace.h"

namespace htd {

class ThreadBudget {
 public:
  /// `extra_threads` = workers available beyond the calling thread.
  explicit ThreadBudget(int extra_threads) : available_(std::max(0, extra_threads)) {}

  /// Claims up to `want` helper threads; returns how many were granted.
  int Claim(int want);
  /// Returns previously claimed helpers to the pool.
  void Release(int count);

 private:
  std::atomic<int> available_;
};

/// Signature of a candidate check: receives the candidate's indices into the
/// caller's candidate-edge list. kNotFound means "this candidate fails";
/// kFound/kStopped end the whole search.
using CandidateFn = std::function<SearchOutcome(const std::vector<int>&)>;

/// Tries all subsets S of {0..n-1} with 1 ≤ |S| ≤ k and min(S) < first_limit
/// on 1 + extra_threads threads. Records search-step work into `stats`:
/// work_total accumulates every step, work_parallel the longest worker's
/// share per search (see SolveStats).
///
/// `simulate_workers` (> 1, only meaningful with extra_threads == 0) runs the
/// search sequentially but additionally computes the makespan the solver's
/// own chunk-scheduling discipline would achieve on that many workers —
/// chunks are list-scheduled in claim order onto the least-loaded virtual
/// worker, exactly mirroring the dynamic chunk claiming of the real parallel
/// path. work_parallel then records the simulated makespan. This is how the
/// Figure 1 harness demonstrates the paper's scaling argument on single-core
/// hardware (DESIGN.md §4, substitution 3).
///
/// `trace` parents one "sep_worker" span per real worker thread (tagged
/// with its slot) under the caller's per-level separator-search span; an
/// all-zero TraceParent (the default) records nothing.
SearchOutcome DriveCandidates(int n, int k, int first_limit, int extra_threads,
                              int simulate_workers, StatsCounters& stats,
                              const CandidateFn& try_candidate,
                              util::TraceParent trace = {});

}  // namespace htd
