// HyperBench-like synthetic corpus (DESIGN.md §4, substitution 1).
//
// HyperBench (Fischl et al. 2021) contains 3648 hypergraphs of CQs and CSPs;
// the paper's Table 1 stratifies them by origin (Application / Synthetic)
// and edge-count bins. This module builds a deterministic offline corpus
// with the same stratification and a family mix modelled on HyperBench's
// published profile: application bins are dominated by small, low-width CQs
// (mostly acyclic or hw 2), synthetic bins by CSP-style instances including
// genuinely hard high-width ones. Counts are scaled by `scale` to keep the
// full benchmark suite laptop-runnable.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "hypergraph/hypergraph.h"

namespace htd::bench {

enum class Origin { kApplication, kSynthetic };

/// Table 1's size bins.
enum class SizeBin { kUpTo10, k10To50, k50To75, k75To100, kOver100 };

std::string OriginName(Origin origin);
std::string SizeBinName(SizeBin bin);
SizeBin BinForEdgeCount(int num_edges);

struct Instance {
  std::string name;
  Origin origin;
  Hypergraph graph;
  /// Width known by construction (paths/acyclic: 1, cycles: 2, ...);
  /// unset for families without a closed form.
  std::optional<int> known_width;
};

struct CorpusConfig {
  uint64_t seed = 20220612;
  /// Replication factor: instances per (family, parameter) cell. The default
  /// yields ~190 instances; raise for larger studies.
  int scale = 1;
};

/// Builds the full stratified corpus.
std::vector<Instance> BuildHyperBenchLikeCorpus(const CorpusConfig& config = {});

/// The HB_large analogue (§5.2): instances with more than 50 edges whose
/// width is at most 6 — selected exactly as the paper does, by |E| and known
/// or previously determined width. `widths[i]` < 0 means unknown (excluded).
std::vector<int> SelectLargeSubset(const std::vector<Instance>& corpus,
                                   const std::vector<int>& widths);

}  // namespace htd::bench
