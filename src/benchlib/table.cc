#include "benchlib/table.h"

#include <cstdio>
#include <sstream>

namespace htd::bench {

void TextTable::AddRow(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string TextTable::Render() const {
  std::vector<size_t> widths;
  for (const auto& row : rows_) {
    if (row.size() > widths.size()) widths.resize(row.size(), 0);
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  std::ostringstream out;
  for (size_t r = 0; r < rows_.size(); ++r) {
    for (size_t i = 0; i < rows_[r].size(); ++i) {
      if (i > 0) out << "  ";
      out << rows_[r][i];
      for (size_t pad = rows_[r][i].size(); pad < widths[i]; ++pad) out << ' ';
    }
    out << '\n';
    if (r == 0) {
      size_t total = 0;
      for (size_t i = 0; i < widths.size(); ++i) total += widths[i] + (i > 0 ? 2 : 0);
      out << std::string(total, '-') << '\n';
    }
  }
  return out.str();
}

std::string Fmt1(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.1f", value);
  return buffer;
}

}  // namespace htd::bench
