#include "benchlib/runner.h"

#include <cstdlib>

#include "baselines/opt_solver.h"
#include "util/cancel.h"
#include "util/timer.h"

namespace htd::bench {

namespace {

double EnvDouble(const char* name, double fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr) return fallback;
  char* end = nullptr;
  double parsed = std::strtod(value, &end);
  return end != value && parsed > 0 ? parsed : fallback;
}

int EnvInt(const char* name, int fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr) return fallback;
  int parsed = std::atoi(value);
  return parsed > 0 ? parsed : fallback;
}

}  // namespace

RunConfig RunConfig::FromEnv() {
  RunConfig config;
  config.timeout_seconds = EnvDouble("HTD_BENCH_TIMEOUT", config.timeout_seconds);
  config.max_width = EnvInt("HTD_BENCH_MAX_WIDTH", config.max_width);
  config.num_threads = EnvInt("HTD_BENCH_THREADS", config.num_threads);
  return config;
}

int CorpusScaleFromEnv() { return EnvInt("HTD_BENCH_SCALE", 1); }

RunRecord RunOptimalWithTimeout(const SolverFactory& factory, const Hypergraph& graph,
                                const RunConfig& config) {
  util::CancelToken cancel;
  cancel.SetTimeout(std::chrono::duration<double>(config.timeout_seconds));
  SolveOptions options;
  options.cancel = &cancel;
  options.num_threads = config.num_threads;
  std::unique_ptr<HdSolver> solver = factory(options);

  util::WallTimer timer;
  OptimalRun run = FindOptimalWidth(*solver, graph, config.max_width);
  RunRecord record;
  record.seconds = timer.ElapsedSeconds();
  if (run.outcome == Outcome::kYes) {
    record.solved = true;
    record.width = run.width;
  } else if (run.outcome == Outcome::kNo) {
    record.decided_no = true;
  }
  return record;
}

Outcome RunDecisionWithTimeout(const SolverFactory& factory, const Hypergraph& graph,
                               int k, const RunConfig& config) {
  util::CancelToken cancel;
  cancel.SetTimeout(std::chrono::duration<double>(config.timeout_seconds));
  SolveOptions options;
  options.cancel = &cancel;
  options.num_threads = config.num_threads;
  std::unique_ptr<HdSolver> solver = factory(options);
  return solver->Solve(graph, k).outcome;
}

RunRecord RunExactWithTimeout(const Hypergraph& graph, const RunConfig& config) {
  util::CancelToken cancel;
  cancel.SetTimeout(std::chrono::duration<double>(config.timeout_seconds));
  SolveOptions options;
  options.cancel = &cancel;
  OptimalSolver solver(options);

  util::WallTimer timer;
  OptimalRun run = solver.FindOptimal(graph, config.max_width);
  RunRecord record;
  record.seconds = timer.ElapsedSeconds();
  if (run.outcome == Outcome::kYes) {
    record.solved = true;
    record.width = run.width;
  } else if (run.outcome == Outcome::kNo) {
    record.decided_no = true;
  }
  return record;
}

}  // namespace htd::bench
