// Benchmark runner: per-instance timeouts and the paper's two metrics.
//
// The paper's experiments ran under HTCondor with a 1-hour timeout and
// report (a) the number of instances solved *optimally* and (b) runtime
// statistics over solved instances only. The runner reproduces that protocol
// in-process: each run gets a CancelToken armed with a deadline; solvers
// poll it cooperatively. Timeout and corpus scale come from the environment
// (HTD_BENCH_TIMEOUT seconds, HTD_BENCH_SCALE) so the same binaries scale
// from smoke test to full study.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "benchlib/corpus.h"
#include "core/solver.h"

namespace htd::bench {

struct RunConfig {
  double timeout_seconds = 2.0;
  int max_width = 10;  ///< the paper probes widths in [1, 10]
  int num_threads = 1;

  /// Reads HTD_BENCH_TIMEOUT / HTD_BENCH_MAX_WIDTH / HTD_BENCH_THREADS.
  static RunConfig FromEnv();
};

/// Reads HTD_BENCH_SCALE (default 1) for corpus sizing.
int CorpusScaleFromEnv();

struct RunRecord {
  bool solved = false;     ///< optimal width found and proven within timeout
  int width = -1;          ///< valid iff solved
  double seconds = 0.0;    ///< time to the optimal solution (solved only)
  bool decided_no = false; ///< proven "width > max_width" within the timeout
};

/// Factory so each run starts from a fresh solver (fresh caches), matching
/// the per-job isolation of the paper's cluster runs.
using SolverFactory = std::function<std::unique_ptr<HdSolver>(const SolveOptions&)>;

/// Runs the optimal-width protocol for one instance under a deadline.
RunRecord RunOptimalWithTimeout(const SolverFactory& factory,
                                const Hypergraph& graph, const RunConfig& config);

/// Decision variant (Table 4): decide hw ≤ k under a deadline.
/// Returns kYes / kNo / kCancelled.
Outcome RunDecisionWithTimeout(const SolverFactory& factory, const Hypergraph& graph,
                               int k, const RunConfig& config);

/// Runs the optimal-width protocol with the exact solver interface (HtdLEO
/// stand-in: no width parameter).
RunRecord RunExactWithTimeout(const Hypergraph& graph, const RunConfig& config);

}  // namespace htd::bench
