// Plain-text table rendering for the benchmark harnesses.
#pragma once

#include <string>
#include <vector>

namespace htd::bench {

/// Fixed-width table: first row is the header; columns auto-size.
class TextTable {
 public:
  void AddRow(std::vector<std::string> cells);
  std::string Render() const;

 private:
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with the paper's one-decimal convention.
std::string Fmt1(double value);

}  // namespace htd::bench
