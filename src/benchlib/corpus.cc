#include "benchlib/corpus.h"

#include "hypergraph/generators.h"
#include "util/rng.h"

namespace htd::bench {

std::string OriginName(Origin origin) {
  return origin == Origin::kApplication ? "Application" : "Synthetic";
}

std::string SizeBinName(SizeBin bin) {
  switch (bin) {
    case SizeBin::kUpTo10:
      return "|E| <= 10";
    case SizeBin::k10To50:
      return "10 < |E| <= 50";
    case SizeBin::k50To75:
      return "50 < |E| <= 75";
    case SizeBin::k75To100:
      return "75 < |E| <= 100";
    case SizeBin::kOver100:
      return "|E| > 100";
  }
  return "?";
}

SizeBin BinForEdgeCount(int num_edges) {
  if (num_edges <= 10) return SizeBin::kUpTo10;
  if (num_edges <= 50) return SizeBin::k10To50;
  if (num_edges <= 75) return SizeBin::k50To75;
  if (num_edges <= 100) return SizeBin::k75To100;
  return SizeBin::kOver100;
}

namespace {

void Add(std::vector<Instance>& corpus, std::string name, Origin origin,
         Hypergraph graph, std::optional<int> known_width = std::nullopt) {
  corpus.push_back(Instance{std::move(name), origin, std::move(graph), known_width});
}

}  // namespace

std::vector<Instance> BuildHyperBenchLikeCorpus(const CorpusConfig& config) {
  std::vector<Instance> corpus;
  util::Rng rng(config.seed);

  for (int rep = 0; rep < config.scale; ++rep) {
    const std::string tag = config.scale > 1 ? "-r" + std::to_string(rep) : "";

    // ---- Application instances: CQ-shaped, mostly small and low width. ----
    // |E| <= 10: tiny queries — acyclic chains/stars and small cycles.
    for (int n : {3, 4, 5, 6, 8, 9}) {
      Add(corpus, "app-path-" + std::to_string(n) + tag, Origin::kApplication,
          MakePath(n + 1), 1);
      Add(corpus, "app-cycle-" + std::to_string(n) + tag, Origin::kApplication,
          MakeCycle(n), 2);
    }
    for (int n : {4, 6, 8, 10}) {
      Add(corpus, "app-star-" + std::to_string(n) + tag, Origin::kApplication,
          MakeStar(n), 1);
    }
    for (int atoms : {4, 6, 8, 10}) {
      util::Rng child = rng.Fork();
      Add(corpus, "app-acq-" + std::to_string(atoms) + tag, Origin::kApplication,
          MakeAcyclicQuery(child, atoms, 4), 1);
    }
    // 10 < |E| <= 50: mid-size CQs with mild cyclicity.
    for (int atoms : {12, 18, 24, 30, 40, 48}) {
      util::Rng child = rng.Fork();
      Add(corpus, "app-cq-" + std::to_string(atoms) + tag, Origin::kApplication,
          MakeRandomCq(child, atoms, 4, 0.25));
    }
    for (int n : {12, 20, 32, 44}) {
      Add(corpus, "app-bigcycle-" + std::to_string(n) + tag, Origin::kApplication,
          MakeCycle(n), 2);
    }
    // 50 < |E| <= 75: large workloads, still query-like. The cq instances
    // here are solvable by every method but separate them on runtime; the
    // chorded acyclic queries sit at det-k's cliff edge.
    for (int atoms : {56, 62, 70}) {
      util::Rng child = rng.Fork();
      Add(corpus, "app-bigcq-" + std::to_string(atoms) + tag, Origin::kApplication,
          MakeRandomCq(child, atoms, 3, 0.10));
    }
    for (int atoms : {58, 66}) {
      util::Rng child = rng.Fork();
      Add(corpus, "app-chordacq-" + std::to_string(atoms) + tag,
          Origin::kApplication,
          AddRandomChords(MakeAcyclicQuery(child, atoms, 4), child, 3));
    }
    Add(corpus, "app-bundle-8" + tag, Origin::kApplication, MakeCycleBundle(8, 9),
        2);
    // 75 < |E| <= 100: the largest application bin — where the hybrid pulls
    // ahead of both reference methods.
    for (int atoms : {80, 88, 95}) {
      util::Rng child = rng.Fork();
      Add(corpus, "app-hugecq-" + std::to_string(atoms) + tag, Origin::kApplication,
          MakeRandomCq(child, atoms, 3, 0.08));
    }
    for (int atoms : {82, 90}) {
      util::Rng child = rng.Fork();
      Add(corpus, "app-chordacq-" + std::to_string(atoms) + tag,
          Origin::kApplication,
          AddRandomChords(MakeAcyclicQuery(child, atoms, 4), child, 4));
    }
    Add(corpus, "app-hugebundle-10" + tag, Origin::kApplication,
        MakeCycleBundle(10, 9), 2);

    // ---- Synthetic instances: CSP-shaped, denser, includes hard cases. ----
    // |E| <= 10: small CSPs and cliques.
    for (int c : {6, 8, 10}) {
      util::Rng child = rng.Fork();
      Add(corpus, "syn-csp-s" + std::to_string(c) + tag, Origin::kSynthetic,
          MakeRandomCsp(child, 3 * c, c, 2, 4));
    }
    Add(corpus, "syn-k4" + tag, Origin::kSynthetic, MakeClique(4), 2);
    // 10 < |E| <= 50: grids, hypercycles, mid CSPs.
    for (int d : {3, 4}) {
      Add(corpus, "syn-grid-" + std::to_string(d) + tag, Origin::kSynthetic,
          MakeGrid(d, d + 1));
    }
    for (int len : {8, 12, 16}) {
      Add(corpus, "syn-hcycle-" + std::to_string(len) + tag, Origin::kSynthetic,
          MakeHyperCycle(len, 4, 2));
    }
    for (int c : {16, 24, 36}) {
      util::Rng child = rng.Fork();
      Add(corpus, "syn-csp-m" + std::to_string(c) + tag, Origin::kSynthetic,
          MakeRandomCsp(child, 2 * c, c, 2, 5));
    }
    Add(corpus, "syn-hcycle40" + tag, Origin::kSynthetic, MakeHyperCycle(40, 3, 1),
        2);
    Add(corpus, "syn-k7" + tag, Origin::kSynthetic, MakeClique(7));
    // 50 < |E| <= 75: chorded cycles (det-k slow, hybrid instant), sparse
    // CSPs, long hypercycles.
    for (int n : {60, 68}) {
      util::Rng child = rng.Fork();
      Add(corpus, "syn-chordcycle-" + std::to_string(n) + tag, Origin::kSynthetic,
          AddRandomChords(MakeCycle(n), child, 6));
    }
    {
      util::Rng child = rng.Fork();
      Add(corpus, "syn-csp-l56" + tag, Origin::kSynthetic,
          MakeRandomCsp(child, 140, 56, 2, 3));
    }
    Add(corpus, "syn-hcycle-l60" + tag, Origin::kSynthetic, MakeHyperCycle(60, 4, 2),
        2);
    Add(corpus, "syn-hcycle-l66" + tag, Origin::kSynthetic, MakeHyperCycle(66, 3, 1),
        2);
    // 75 < |E| <= 100: the paper's sweet spot for log-k — grids and sparse
    // CSPs where det-k (and often plain log-k) time out but the hybrid wins.
    Add(corpus, "syn-grid-4x12" + tag, Origin::kSynthetic, MakeGrid(4, 12));
    Add(corpus, "syn-grid-4x14" + tag, Origin::kSynthetic, MakeGrid(4, 14));
    {
      util::Rng child = rng.Fork();
      Add(corpus, "syn-csp-xl80" + tag, Origin::kSynthetic,
          MakeRandomCsp(child, 160, 80, 2, 3));
    }
    {
      util::Rng child = rng.Fork();
      Add(corpus, "syn-csp-xl90" + tag, Origin::kSynthetic,
          MakeRandomCsp(child, 240, 90, 2, 4));
    }
    Add(corpus, "syn-k13" + tag, Origin::kSynthetic, MakeClique(13));
    // |E| > 100 (synthetic only, like HyperBench).
    Add(corpus, "syn-bigbundle" + tag, Origin::kSynthetic, MakeCycleBundle(13, 9), 2);
    Add(corpus, "syn-grid-4x18" + tag, Origin::kSynthetic, MakeGrid(4, 18));
    Add(corpus, "syn-grid-5x16" + tag, Origin::kSynthetic, MakeGrid(5, 16));
    {
      util::Rng child = rng.Fork();
      Add(corpus, "syn-csp-xxl" + tag, Origin::kSynthetic,
          MakeRandomCsp(child, 300, 110, 2, 3));
    }
    {
      util::Rng child = rng.Fork();
      Add(corpus, "syn-csp-xxl-hard" + tag, Origin::kSynthetic,
          MakeRandomCsp(child, 150, 105, 2, 4));
    }
    Add(corpus, "syn-hugecycle" + tag, Origin::kSynthetic, MakeCycle(110), 2);
  }
  return corpus;
}

std::vector<int> SelectLargeSubset(const std::vector<Instance>& corpus,
                                   const std::vector<int>& widths) {
  std::vector<int> selected;
  for (size_t i = 0; i < corpus.size(); ++i) {
    if (corpus[i].graph.num_edges() <= 50) continue;
    int width = widths[i];
    if (width >= 1 && width <= 6) selected.push_back(static_cast<int>(i));
  }
  return selected;
}

}  // namespace htd::bench
