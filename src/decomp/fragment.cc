#include "decomp/fragment.h"

#include <algorithm>
#include <functional>

#include "util/logging.h"

namespace htd {

int Fragment::AddNode(std::vector<int> lambda, util::DynamicBitset chi) {
  HTD_CHECK(!lambda.empty());
  FragmentNode node;
  std::sort(lambda.begin(), lambda.end());
  node.lambda = std::move(lambda);
  node.chi = std::move(chi);
  nodes_.push_back(std::move(node));
  return num_nodes() - 1;
}

int Fragment::AddSpecialLeaf(int special_id, util::DynamicBitset chi) {
  HTD_CHECK_GE(special_id, 0);
  FragmentNode node;
  node.special = special_id;
  node.chi = std::move(chi);
  nodes_.push_back(std::move(node));
  return num_nodes() - 1;
}

int Fragment::Graft(const Fragment& other, int parent_idx) {
  HTD_CHECK_GE(other.root(), 0);
  int offset = num_nodes();
  for (const FragmentNode& node : other.nodes_) {
    FragmentNode copy = node;
    for (int& c : copy.children) c += offset;
    nodes_.push_back(std::move(copy));
  }
  int new_root = other.root() + offset;
  if (parent_idx >= 0) AddChild(parent_idx, new_root);
  return new_root;
}

int Fragment::FindSpecialLeaf(int special_id) const {
  int found = -1;
  for (int i = 0; i < num_nodes(); ++i) {
    if (nodes_[i].special == special_id) {
      HTD_CHECK_EQ(found, -1) << "special edge " << special_id
                              << " occurs in more than one leaf";
      found = i;
    }
  }
  return found;
}

void Fragment::ReplaceSpecialLeaf(int idx, std::vector<int> lambda) {
  HTD_CHECK(nodes_[idx].IsSpecialLeaf());
  HTD_CHECK(!lambda.empty());
  std::sort(lambda.begin(), lambda.end());
  nodes_[idx].special = -1;
  nodes_[idx].lambda = std::move(lambda);
}

void Fragment::TruncateTo(int new_size) {
  HTD_CHECK(new_size >= 0 && new_size <= num_nodes());
  nodes_.resize(new_size);
  for (auto& node : nodes_) {
    std::erase_if(node.children, [new_size](int c) { return c >= new_size; });
  }
  if (root_ >= new_size) root_ = -1;
}

int Fragment::CountSpecialLeaves() const {
  int count = 0;
  for (const auto& node : nodes_) {
    if (node.IsSpecialLeaf()) ++count;
  }
  return count;
}

void Fragment::MaterializeSpecialLeaves(const SpecialEdgeRegistry& registry) {
  for (auto& node : nodes_) {
    if (!node.IsSpecialLeaf()) continue;
    std::vector<int> witness = registry.witness(node.special);
    HTD_CHECK(!witness.empty()) << "special edge without witness edges";
    std::sort(witness.begin(), witness.end());
    node.lambda = std::move(witness);
    node.special = -1;
  }
}

void Fragment::RerootAt(int new_root) {
  HTD_CHECK(new_root >= 0 && new_root < num_nodes());
  if (new_root == root_) return;
  // Build undirected adjacency, then re-orient children lists via BFS.
  std::vector<std::vector<int>> adjacent(num_nodes());
  for (int u = 0; u < num_nodes(); ++u) {
    for (int c : nodes_[u].children) {
      adjacent[u].push_back(c);
      adjacent[c].push_back(u);
    }
  }
  for (auto& node : nodes_) node.children.clear();
  std::vector<bool> visited(num_nodes(), false);
  std::vector<int> queue{new_root};
  visited[new_root] = true;
  for (size_t head = 0; head < queue.size(); ++head) {
    int u = queue[head];
    for (int v : adjacent[u]) {
      if (visited[v]) continue;
      visited[v] = true;
      nodes_[u].children.push_back(v);
      queue.push_back(v);
    }
  }
  root_ = new_root;
}

Decomposition Fragment::ToDecomposition() const {
  HTD_CHECK_GE(root_, 0) << "fragment has no root";
  HTD_CHECK_EQ(CountSpecialLeaves(), 0)
      << "cannot finalise a fragment with unresolved special leaves";
  Decomposition decomp;
  // DFS so that parents are added before children (AddNode requires it).
  std::function<void(int, int)> visit = [&](int u, int parent) {
    int id = decomp.AddNode(nodes_[u].lambda, nodes_[u].chi, parent);
    for (int c : nodes_[u].children) visit(c, id);
  };
  visit(root_, -1);
  return decomp;
}

}  // namespace htd
