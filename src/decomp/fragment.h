// HD-fragments: partial decompositions with special-edge leaves.
//
// Each successful Decomp call (paper §4, Appendix A) yields a fragment — an
// HD of an extended subhypergraph in the sense of Definition 3.3. Interfaces
// to fragments "below" appear as leaves labelled with a single special edge;
// stitching (the soundness-proof construction) replaces such a leaf by the
// real node c and grafts the child fragments underneath.
#pragma once

#include <vector>

#include "decomp/decomposition.h"
#include "decomp/special_edges.h"
#include "util/bitset.h"

namespace htd {

struct FragmentNode {
  std::vector<int> lambda;  ///< edge ids; empty iff this is a special leaf
  int special = -1;         ///< special-edge id if a special leaf, else -1
  util::DynamicBitset chi;
  std::vector<int> children;

  bool IsSpecialLeaf() const { return special >= 0; }
};

class Fragment {
 public:
  /// Adds a regular node.
  int AddNode(std::vector<int> lambda, util::DynamicBitset chi);
  /// Adds a special-edge leaf (λ = {s}, χ = vertices of s).
  int AddSpecialLeaf(int special_id, util::DynamicBitset chi);

  void SetRoot(int idx) { root_ = idx; }
  int root() const { return root_; }
  void AddChild(int parent, int child) { nodes_[parent].children.push_back(child); }

  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  const FragmentNode& node(int i) const { return nodes_[i]; }
  FragmentNode& mutable_node(int i) { return nodes_[i]; }

  /// Copies all nodes of `other` into this fragment as the subtree of a new
  /// child of `parent_idx`. Returns the new index of other's root.
  int Graft(const Fragment& other, int parent_idx);

  /// Index of the unique leaf labelled with the given special edge; -1 if
  /// absent. CHECK-fails if the id occurs more than once (ids are unique per
  /// stitching step by construction).
  int FindSpecialLeaf(int special_id) const;

  /// Turns special leaf `idx` into a regular node with the given labels
  /// (stitching step 1: the leaf becomes node c; χ must equal the leaf's χ).
  void ReplaceSpecialLeaf(int idx, std::vector<int> lambda);

  /// Number of remaining special leaves.
  int CountSpecialLeaves() const;

  /// Drops all nodes with index >= new_size (backtracking rollback). Child
  /// references to dropped nodes are pruned; the root is cleared if dropped.
  void TruncateTo(int new_size);

  /// Converts each remaining special leaf into a regular node whose λ is the
  /// registry witness (the separator edges whose union covers it). Used by
  /// the GHD solver, where interface leaves stay in the final decomposition.
  void MaterializeSpecialLeaves(const SpecialEdgeRegistry& registry);

  /// Re-orients the tree so that `new_root` becomes the root. Only valid for
  /// GHD use (HDs are rooted; GHDs are not, which is exactly the degree of
  /// freedom BalancedGo exploits — paper §1).
  void RerootAt(int new_root);

  /// Converts to a final Decomposition. CHECK-fails if special leaves remain.
  Decomposition ToDecomposition() const;

 private:
  std::vector<FragmentNode> nodes_;
  int root_ = -1;
};

}  // namespace htd
