#include "decomp/extended_subhypergraph.h"

namespace htd {

ExtendedSubhypergraph ExtendedSubhypergraph::FullGraph(const Hypergraph& graph) {
  ExtendedSubhypergraph sub;
  sub.edges = graph.AllEdges();
  sub.edge_count = graph.num_edges();
  return sub;
}

util::DynamicBitset VerticesOf(const Hypergraph& graph,
                               const SpecialEdgeRegistry& registry,
                               const ExtendedSubhypergraph& sub) {
  util::DynamicBitset vertices(graph.num_vertices());
  sub.edges.ForEach([&](int e) {
    for (int v : graph.edge_vertex_list(e)) vertices.Set(v);
  });
  for (int s : sub.specials) {
    vertices.InplaceOr(registry.vertices(s));
  }
  return vertices;
}

}  // namespace htd
