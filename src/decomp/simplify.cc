#include "decomp/simplify.h"

#include <functional>
#include <vector>

#include "util/logging.h"

namespace htd {
namespace {

struct MutableTree {
  std::vector<std::vector<int>> lambda;
  std::vector<util::DynamicBitset> chi;
  std::vector<int> parent;
  std::vector<std::vector<int>> children;
  std::vector<bool> alive;
  int root = -1;
};

MutableTree FromDecomposition(const Decomposition& decomp) {
  MutableTree tree;
  int n = decomp.num_nodes();
  tree.lambda.resize(n);
  tree.chi.reserve(n);
  tree.parent.resize(n);
  tree.children.resize(n);
  tree.alive.assign(n, true);
  tree.root = decomp.root();
  for (int u = 0; u < n; ++u) {
    tree.lambda[u] = decomp.node(u).lambda;
    tree.chi.push_back(decomp.node(u).chi);
    tree.parent[u] = decomp.node(u).parent;
    tree.children[u] = decomp.node(u).children;
  }
  return tree;
}

// Detaches `u`, re-attaching its children to its parent.
void Contract(MutableTree& tree, int u) {
  int p = tree.parent[u];
  HTD_CHECK_GE(p, 0);
  auto& siblings = tree.children[p];
  std::erase(siblings, u);
  for (int c : tree.children[u]) {
    tree.parent[c] = p;
    siblings.push_back(c);
  }
  tree.children[u].clear();
  tree.alive[u] = false;
}

}  // namespace

Decomposition SimplifyDecomposition(const Hypergraph& graph,
                                    const Decomposition& decomp) {
  if (decomp.num_nodes() == 0) return Decomposition();
  MutableTree tree = FromDecomposition(decomp);

  bool changed = true;
  while (changed) {
    changed = false;
    // Rule 1: contract nodes whose bag is contained in the parent's bag.
    for (int u = 0; u < decomp.num_nodes(); ++u) {
      if (!tree.alive[u] || tree.parent[u] < 0) continue;
      if (tree.chi[u].IsSubsetOf(tree.chi[tree.parent[u]])) {
        Contract(tree, u);
        changed = true;
      }
    }
    // Rule 2: drop leaves that cover no edge exclusively. An edge is
    // "exclusively covered" by u if no other alive node's bag covers it.
    for (int u = 0; u < decomp.num_nodes(); ++u) {
      if (!tree.alive[u] || tree.parent[u] < 0 || !tree.children[u].empty()) {
        continue;
      }
      bool exclusive = false;
      for (int e = 0; e < graph.num_edges() && !exclusive; ++e) {
        if (!graph.edge_vertices(e).IsSubsetOf(tree.chi[u])) continue;
        bool covered_elsewhere = false;
        for (int w = 0; w < decomp.num_nodes() && !covered_elsewhere; ++w) {
          if (w == u || !tree.alive[w]) continue;
          covered_elsewhere = graph.edge_vertices(e).IsSubsetOf(tree.chi[w]);
        }
        exclusive = !covered_elsewhere;
      }
      if (!exclusive) {
        Contract(tree, u);
        changed = true;
      }
    }
  }

  Decomposition result;
  std::function<void(int, int)> emit = [&](int u, int new_parent) {
    int id = result.AddNode(tree.lambda[u], tree.chi[u], new_parent);
    for (int c : tree.children[u]) emit(c, id);
  };
  emit(tree.root, -1);
  return result;
}

}  // namespace htd
