#include "decomp/decomposition.h"

#include <algorithm>
#include <functional>
#include <sstream>

#include "util/logging.h"

namespace htd {

int Decomposition::AddNode(std::vector<int> lambda, util::DynamicBitset chi,
                           int parent) {
  int id = num_nodes();
  DecompNode node;
  std::sort(lambda.begin(), lambda.end());
  node.lambda = std::move(lambda);
  node.chi = std::move(chi);
  node.parent = parent;
  if (parent == -1) {
    HTD_CHECK_EQ(root_, -1) << "decomposition already has a root";
    root_ = id;
  } else {
    HTD_CHECK(parent >= 0 && parent < id);
    nodes_[parent].children.push_back(id);
  }
  nodes_.push_back(std::move(node));
  return id;
}

int Decomposition::Width() const {
  int width = 0;
  for (const auto& node : nodes_) {
    width = std::max(width, static_cast<int>(node.lambda.size()));
  }
  return width;
}

int Decomposition::Depth() const {
  if (root_ == -1) return 0;
  int max_depth = 0;
  std::function<void(int, int)> visit = [&](int u, int depth) {
    max_depth = std::max(max_depth, depth);
    for (int c : nodes_[u].children) visit(c, depth + 1);
  };
  visit(root_, 1);
  return max_depth;
}

std::string Decomposition::ToString(const Hypergraph& graph) const {
  std::ostringstream out;
  std::function<void(int, int)> visit = [&](int u, int indent) {
    for (int i = 0; i < indent; ++i) out << "  ";
    out << "node " << u << ": lambda={";
    for (size_t i = 0; i < nodes_[u].lambda.size(); ++i) {
      if (i > 0) out << ", ";
      out << graph.edge_name(nodes_[u].lambda[i]);
    }
    out << "} chi={";
    bool first = true;
    nodes_[u].chi.ForEach([&](int v) {
      if (!first) out << ", ";
      out << graph.vertex_name(v);
      first = false;
    });
    out << "}\n";
    for (int c : nodes_[u].children) visit(c, indent + 1);
  };
  if (root_ != -1) visit(root_, 0);
  return out.str();
}

}  // namespace htd
