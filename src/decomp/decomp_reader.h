// Deserialisation of decompositions (inverse of decomp_writer.h).
//
// Reads the JSON document emitted by WriteDecompositionJson back into a
// Decomposition over a given hypergraph, resolving edge and vertex names.
// This is what external tooling needs to hand a decomposition back to the
// library (e.g. to validate a decomposition produced by another system, as
// examples/validate_tool does): the reader is strict — unknown names,
// missing roots, forward/dangling parent references and malformed JSON all
// produce InvalidArgument with a precise message, never a crash.
#pragma once

#include <string_view>

#include "decomp/decomposition.h"
#include "hypergraph/hypergraph.h"
#include "util/status.h"

namespace htd {

/// Parses {"width": w, "nodes": [{"id", "parent", "lambda": [edge names],
/// "chi": [vertex names]}]}. Node ids may appear in any order; exactly one
/// node must have parent -1. The "width" field, if present, must match the
/// parsed decomposition's width.
util::StatusOr<Decomposition> ParseDecompositionJson(const Hypergraph& graph,
                                                     std::string_view text);

}  // namespace htd
