// Final (generalized) hypertree decompositions ⟨T, χ, λ⟩.
//
// A Decomposition is a rooted tree whose nodes carry a λ-label (edge ids of
// the base hypergraph) and a χ-label (vertex bitset). Whether it is an HD, a
// GHD, or neither is decided by the validators in decomp/validation.h; the
// structure itself is agnostic.
#pragma once

#include <string>
#include <vector>

#include "hypergraph/hypergraph.h"
#include "util/bitset.h"

namespace htd {

struct DecompNode {
  std::vector<int> lambda;    ///< λ(u): edge ids, sorted
  util::DynamicBitset chi;    ///< χ(u): vertex set
  int parent = -1;
  std::vector<int> children;
};

class Decomposition {
 public:
  /// Adds a node; parent == -1 designates the root (exactly one allowed).
  int AddNode(std::vector<int> lambda, util::DynamicBitset chi, int parent);

  int root() const { return root_; }
  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  const DecompNode& node(int i) const { return nodes_[i]; }

  /// max_u |λ(u)| — the width (paper §2).
  int Width() const;

  /// Depth of the decomposition tree (root = depth 1); the paper notes the
  /// log-recursion bound does NOT bound this.
  int Depth() const;

  std::string ToString(const Hypergraph& graph) const;

 private:
  std::vector<DecompNode> nodes_;
  int root_ = -1;
};

}  // namespace htd
