// ExtendedSubhypergraph — the triple ⟨E', Sp, Conn⟩ of Definition 3.1.
//
// E' is a bitset over the base hypergraph's edges, Sp a sorted list of
// special-edge ids. Conn is not stored here: the algorithms pass it
// separately (it changes per recursive call while E'/Sp identify the
// subproblem).
#pragma once

#include <vector>

#include "decomp/special_edges.h"
#include "hypergraph/hypergraph.h"
#include "util/bitset.h"

namespace htd {

struct ExtendedSubhypergraph {
  util::DynamicBitset edges;   ///< subset of E(H), universe = num_edges
  std::vector<int> specials;   ///< sorted special-edge ids
  int edge_count = 0;          ///< cached popcount of `edges`

  /// |E'| + |Sp| — the size measure of the paper's balancedness conditions.
  int size() const { return edge_count + static_cast<int>(specials.size()); }

  bool operator==(const ExtendedSubhypergraph& other) const {
    return edges == other.edges && specials == other.specials;
  }

  /// H viewed as an extended subhypergraph of itself: ⟨E(H), ∅, ∅⟩.
  static ExtendedSubhypergraph FullGraph(const Hypergraph& graph);
};

/// V(H') = (⋃E') ∪ (⋃Sp): all vertices of all (special) edges.
util::DynamicBitset VerticesOf(const Hypergraph& graph,
                               const SpecialEdgeRegistry& registry,
                               const ExtendedSubhypergraph& sub);

}  // namespace htd
