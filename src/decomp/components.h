// [U]-components of extended subhypergraphs (Definition 3.2).
//
// Two (possibly special) edges f1, f2 are [U]-adjacent if (f1 ∩ f2) \ U ≠ ∅;
// [U]-components are the classes of the transitive closure. Items fully
// inside U (f ⊆ U) belong to no component — they are "covered" by the
// separator and returned separately.
//
// This is the hottest kernel of every solver: it runs once per candidate
// separator. The implementation is a single union-find pass over the items'
// vertices, O(Σ|f| · α).
#pragma once

#include <vector>

#include "decomp/extended_subhypergraph.h"

namespace htd {

struct ComponentSplit {
  /// The [U]-components, each with its full vertex set V(component)
  /// (including vertices inside U) in `component_vertices`.
  std::vector<ExtendedSubhypergraph> components;
  std::vector<util::DynamicBitset> component_vertices;

  /// Items f with f ⊆ U: edges here need no further work; special edges here
  /// must become leaf children of the separator's node.
  ExtendedSubhypergraph covered;

  /// Size (|E'|+|Sp|) of the largest component; 0 if none.
  int MaxComponentSize() const;

  /// Index of the unique component with size > half, or -1 if none exists.
  /// (`half` is compared as: size * 2 > total, i.e. strict majority.)
  int FindOversized(int total) const;
};

/// Splits `sub` into [U]-components where U = `separator` (a vertex set).
ComponentSplit SplitComponents(const Hypergraph& graph,
                               const SpecialEdgeRegistry& registry,
                               const ExtendedSubhypergraph& sub,
                               const util::DynamicBitset& separator);

}  // namespace htd
