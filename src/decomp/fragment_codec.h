// Portable fragments: HD-fragments re-expressed over caller-defined tokens.
//
// A Fragment speaks one solve's coordinates — base-graph edge ids, vertex
// ids, run-local special-edge ids. To reuse a fragment in a *different*
// solve (the subproblem store memoizes positive outcomes across runs and
// across instances), it is re-encoded over opaque integer tokens chosen by
// the caller: the store uses canonical vertex ids and allowed-trace indices
// so that any isomorphic subproblem can decode the fragment back into its
// own ids. This module is deliberately ignorant of canonicalisation — it
// only applies the translators it is handed.
//
// Encode and decode both fail soft (std::nullopt) instead of CHECK-failing:
// an unencodable fragment means the producer skips the memoization, a
// undecodable entry means the consumer treats it as a miss.
#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <vector>

#include "decomp/fragment.h"

namespace htd {

struct PortableFragmentNode {
  std::vector<int> lambda;   ///< edge tokens; empty iff special leaf
  int special = -1;          ///< special token if a special leaf, else -1
  std::vector<int> chi;      ///< vertex tokens, sorted ascending
  std::vector<int> children;
};

struct PortableFragment {
  std::vector<PortableFragmentNode> nodes;
  int root = -1;

  /// Rough heap footprint, for the store's byte budget.
  size_t ApproxBytes() const;
};

/// Token translator; returns -1 for "no token" (aborts the conversion).
using IdMapFn = std::function<int(int)>;

/// Re-expresses `fragment` over tokens. Fails (nullopt) if the fragment has
/// no root or any id has no token — the caller then skips memoization.
std::optional<PortableFragment> EncodeFragment(const Fragment& fragment,
                                               const IdMapFn& edge_token,
                                               const IdMapFn& vertex_token,
                                               const IdMapFn& special_token);

/// Rebuilds a Fragment in the consumer's ids; χ bitsets use a vertex
/// universe of `num_base_vertices`. Fails (nullopt) on any unmapped token or
/// structurally invalid input (bad child index, empty λ on a regular node).
std::optional<Fragment> DecodeFragment(const PortableFragment& portable,
                                       int num_base_vertices,
                                       const IdMapFn& edge_of_token,
                                       const IdMapFn& vertex_of_token,
                                       const IdMapFn& special_of_token);

}  // namespace htd
