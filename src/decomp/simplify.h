// Post-processing of decompositions: contract redundant nodes.
//
// Solvers (especially det-k-decomp and the stitching construction) can leave
// nodes whose bag is contained in their parent's bag, or leaves that cover
// nothing exclusively. Removing them never hurts validity or width and makes
// the decompositions smaller — which matters downstream, e.g. fewer bag
// relations to materialise in Yannakakis evaluation.
#pragma once

#include "decomp/decomposition.h"
#include "hypergraph/hypergraph.h"

namespace htd {

/// Returns an equivalent decomposition with
///  * every node whose χ is a subset of its parent's χ contracted into the
///    parent (its children re-attach to the parent), and
///  * every leaf that covers no hypergraph edge exclusively removed,
/// iterated to a fixpoint. Width never increases; HD/GHD validity is
/// preserved (the classic tree-decomposition contraction argument, which the
/// tests verify via the validators on every family).
Decomposition SimplifyDecomposition(const Hypergraph& graph,
                                    const Decomposition& decomp);

}  // namespace htd
