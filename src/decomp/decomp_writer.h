// Serialisation of decompositions for downstream tools.
//
// GML is what the original det-k-decomp / log-k-decomp tools emit (and what
// hypergraph visualisers consume); the JSON form is convenient for scripted
// analysis of benchmark results.
#pragma once

#include <string>

#include "decomp/decomposition.h"
#include "hypergraph/hypergraph.h"

namespace htd {

/// Graph Modelling Language: one node per decomposition node with its λ and
/// χ labels, one edge per tree edge.
std::string WriteDecompositionGml(const Hypergraph& graph,
                                  const Decomposition& decomp);

/// JSON: {"width": w, "nodes": [{"id", "parent", "lambda": [names],
/// "chi": [names]}]}.
std::string WriteDecompositionJson(const Hypergraph& graph,
                                   const Decomposition& decomp);

}  // namespace htd
