// Registry of special edges created during a decomposition run.
//
// A special edge (paper §3) is a vertex set χ(u) acting as the interface
// between an HD-fragment and the fragments below it. Special edges are
// created dynamically (one per parent/child split) and referenced by id from
// ExtendedSubhypergraphs.
//
// Ids are never deduplicated: two splits that happen to produce the same
// vertex set still get distinct ids, because each id marks a distinct leaf
// that a distinct stitching step will later replace (collapsing them would
// leave one of the two stitching steps without its leaf).
//
// Thread-safety: all accessors lock; entries live in a deque and are
// immutable once constructed, so the references returned by
// vertices()/witness() remain valid (and safely readable) after the lock is
// released even while other workers keep registering new special edges.
#pragma once

#include <deque>
#include <mutex>
#include <vector>

#include "util/bitset.h"

namespace htd {

class SpecialEdgeRegistry {
 public:
  explicit SpecialEdgeRegistry(int num_vertices) : num_vertices_(num_vertices) {}

  /// Registers a special edge with the λ-edges whose union produced it (the
  /// "witness"; used when materialising GHD leaves). Returns a fresh id.
  int Add(util::DynamicBitset vertices, std::vector<int> witness_edges);

  const util::DynamicBitset& vertices(int id) const {
    HTD_DCHECK(id >= 0);
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_[id].vertices;
  }
  const std::vector<int>& witness(int id) const {
    HTD_DCHECK(id >= 0);
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_[id].witness;
  }

  int size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return static_cast<int>(entries_.size());
  }
  int num_vertices() const { return num_vertices_; }

 private:
  struct Entry {
    util::DynamicBitset vertices;
    std::vector<int> witness;
  };
  int num_vertices_;
  mutable std::mutex mutex_;
  std::deque<Entry> entries_;
};

}  // namespace htd
