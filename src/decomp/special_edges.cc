#include "decomp/special_edges.h"

namespace htd {

int SpecialEdgeRegistry::Add(util::DynamicBitset vertices,
                             std::vector<int> witness_edges) {
  HTD_CHECK_EQ(vertices.size_bits(), num_vertices_);
  HTD_CHECK(vertices.Any()) << "special edges must be non-empty";
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.push_back(Entry{std::move(vertices), std::move(witness_edges)});
  return static_cast<int>(entries_.size()) - 1;
}

}  // namespace htd
