// Normal-form machinery of §3: Theorem 3.6 (every HD can be brought into
// minimal-χ normal form without increasing width) and Lemma 3.10 (every HD
// has a balanced separator), both constructive.
//
// NormalizeHd re-derives the decomposition top-down with the normal-form
// rules of Definition 3.5 — χ(c) = ⋃λ(c) ∩ ⋃C_p, exactly one component per
// child, progress at every child — restricting candidate λ-labels to those
// occurring in the input HD. That restriction is what makes the
// transformation polynomial: the normalisation argument of [19, Thm. 5.4]
// only ever re-uses labels of the input decomposition, and switching from
// the maximal-χ form of [19] to the paper's minimal-χ form keeps the same
// tree and λ-labels (see the discussion below Definition 3.5). The search
// here is the det-k-decomp recursion with the candidate set Λ(D) instead of
// all ≤k-subsets of E(H).
//
// FindBalancedSeparatorNode walks the HD from the root, always descending
// into the unique oversized child subtree, exactly as in the proof of
// Lemma 3.10; the returned node satisfies both balance conditions of
// Definition 3.9 (each child subtree covers at most half of E(H), the part
// above covers strictly less than half).
#pragma once

#include "decomp/decomposition.h"
#include "hypergraph/hypergraph.h"
#include "util/status.h"

namespace htd {

/// Theorem 3.6: an HD of `graph` in minimal-χ normal form (Definition 3.5)
/// whose width is at most width(decomp). `decomp` must be a valid HD of
/// `graph` (checked). Returns kInternal if the label-restricted
/// reconstruction fails — which Theorem 3.6 rules out for valid inputs; the
/// test suite asserts it never happens on any instance family.
util::StatusOr<Decomposition> NormalizeHd(const Hypergraph& graph,
                                          const Decomposition& decomp);

/// Lemma 3.10: a node u of `decomp` such that no child subtree of u covers
/// (first-covers) more than |E(H)|/2 edges and the part of the tree above u
/// first-covers strictly fewer than |E(H)|/2. `decomp` must be a valid HD of
/// `graph` with a root — the walk's invariant ("at most one oversized child
/// sibling") is a consequence of the connectedness condition and is
/// CHECK-enforced, so invalid inputs abort rather than mis-answer.
int FindBalancedSeparatorNode(const Hypergraph& graph, const Decomposition& decomp);

/// cov(T_u) for every node (Definition 3.4 restricted to plain hypergraphs):
/// the set of edges first covered inside the subtree rooted at u. Exposed for
/// tests and for FindBalancedSeparatorNode.
std::vector<util::DynamicBitset> FirstCoverPerSubtree(const Hypergraph& graph,
                                                      const Decomposition& decomp);

}  // namespace htd
