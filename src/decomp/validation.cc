#include "decomp/validation.h"

#include <functional>
#include <sstream>
#include <vector>

#include "decomp/components.h"

namespace htd {
namespace {

// Checks the connectedness condition: for each vertex, the nodes whose bag
// contains it must induce a subtree. A set of c nodes inside a tree is
// connected iff it spans exactly c-1 of the tree's (child, parent) edges.
Validation CheckConnectedness(const Decomposition& decomp, int num_vertices) {
  std::vector<int> nodes_with_vertex(num_vertices, 0);
  std::vector<int> edges_with_vertex(num_vertices, 0);
  for (int u = 0; u < decomp.num_nodes(); ++u) {
    decomp.node(u).chi.ForEach([&](int v) { ++nodes_with_vertex[v]; });
    if (decomp.node(u).parent >= 0) {
      const auto& parent_chi = decomp.node(decomp.node(u).parent).chi;
      decomp.node(u).chi.ForEach([&](int v) {
        if (parent_chi.Test(v)) ++edges_with_vertex[v];
      });
    }
  }
  for (int v = 0; v < num_vertices; ++v) {
    if (nodes_with_vertex[v] > 0 &&
        edges_with_vertex[v] != nodes_with_vertex[v] - 1) {
      return Validation::Fail("connectedness violated for vertex " +
                              std::to_string(v));
    }
  }
  return Validation::Ok();
}

// Bottom-up χ(T_u) for every node.
std::vector<util::DynamicBitset> SubtreeChi(const Decomposition& decomp,
                                            int num_vertices) {
  std::vector<util::DynamicBitset> subtree(decomp.num_nodes(),
                                           util::DynamicBitset(num_vertices));
  std::function<void(int)> visit = [&](int u) {
    subtree[u] = decomp.node(u).chi;
    for (int c : decomp.node(u).children) {
      visit(c);
      subtree[u].InplaceOr(subtree[c]);
    }
  };
  if (decomp.root() >= 0) visit(decomp.root());
  return subtree;
}

}  // namespace

Validation ValidateGhd(const Hypergraph& graph, const Decomposition& decomp) {
  if (decomp.root() < 0) {
    if (graph.num_edges() == 0) return Validation::Ok();
    return Validation::Fail("empty decomposition of non-empty hypergraph");
  }
  // Condition (3): χ(u) ⊆ ⋃λ(u); also λ must reference valid edges.
  for (int u = 0; u < decomp.num_nodes(); ++u) {
    const auto& node = decomp.node(u);
    for (int e : node.lambda) {
      if (e < 0 || e >= graph.num_edges()) {
        return Validation::Fail("node " + std::to_string(u) +
                                " has invalid lambda edge id");
      }
    }
    util::DynamicBitset lambda_union = graph.UnionOfEdges(node.lambda);
    if (!node.chi.IsSubsetOf(lambda_union)) {
      return Validation::Fail("chi(u) not covered by lambda(u) at node " +
                              std::to_string(u));
    }
  }
  // Condition (1): every edge covered by some bag.
  for (int e = 0; e < graph.num_edges(); ++e) {
    bool covered = false;
    for (int u = 0; u < decomp.num_nodes() && !covered; ++u) {
      covered = graph.edge_vertices(e).IsSubsetOf(decomp.node(u).chi);
    }
    if (!covered) {
      return Validation::Fail("edge " + graph.edge_name(e) +
                              " covered by no bag");
    }
  }
  // Condition (2).
  return CheckConnectedness(decomp, graph.num_vertices());
}

Validation ValidateHd(const Hypergraph& graph, const Decomposition& decomp) {
  Validation ghd = ValidateGhd(graph, decomp);
  if (!ghd.ok) return ghd;
  // Condition (4): χ(T_u) ∩ ⋃λ(u) ⊆ χ(u).
  auto subtree = SubtreeChi(decomp, graph.num_vertices());
  for (int u = 0; u < decomp.num_nodes(); ++u) {
    util::DynamicBitset lambda_union = graph.UnionOfEdges(decomp.node(u).lambda);
    util::DynamicBitset witness = subtree[u] & lambda_union;
    if (!witness.IsSubsetOf(decomp.node(u).chi)) {
      return Validation::Fail("special condition violated at node " +
                              std::to_string(u) + ": subtree vertices " +
                              (witness - decomp.node(u).chi).ToString() +
                              " from lambda missing in chi");
    }
  }
  return Validation::Ok();
}

Validation ValidateHdWithWidth(const Hypergraph& graph, const Decomposition& decomp,
                               int k) {
  Validation hd = ValidateHd(graph, decomp);
  if (!hd.ok) return hd;
  if (decomp.Width() > k) {
    return Validation::Fail("width " + std::to_string(decomp.Width()) +
                            " exceeds requested " + std::to_string(k));
  }
  return Validation::Ok();
}

Validation ValidateExtendedHd(const Hypergraph& graph,
                              const SpecialEdgeRegistry& registry,
                              const ExtendedSubhypergraph& sub,
                              const util::DynamicBitset& conn,
                              const Fragment& fragment) {
  if (fragment.root() < 0) return Validation::Fail("fragment has no root");
  const int n = fragment.num_nodes();

  // Reachability / tree sanity plus parent map.
  std::vector<int> parent(n, -2);
  bool multi_parent = false;
  std::function<void(int)> visit = [&](int u) {
    for (int c : fragment.node(u).children) {
      if (parent[c] != -2) {
        multi_parent = true;
        continue;
      }
      parent[c] = u;
      visit(c);
    }
  };
  parent[fragment.root()] = -1;
  visit(fragment.root());
  if (multi_parent) return Validation::Fail("node with multiple parents");
  for (int u = 0; u < n; ++u) {
    if (parent[u] == -2) return Validation::Fail("node unreachable from root");
  }

  // Condition (1): λ(u) ⊆ E(H) with χ(u) ⊆ ⋃λ(u), or special leaf with χ = s.
  // Condition (5): special-edge nodes are leaves.
  for (int u = 0; u < n; ++u) {
    const FragmentNode& node = fragment.node(u);
    if (node.IsSpecialLeaf()) {
      if (!node.children.empty()) {
        return Validation::Fail("special-edge node is not a leaf");
      }
      if (node.chi != registry.vertices(node.special)) {
        return Validation::Fail("special leaf chi differs from its special edge");
      }
    } else {
      util::DynamicBitset lambda_union = graph.UnionOfEdges(node.lambda);
      if (!node.chi.IsSubsetOf(lambda_union)) {
        return Validation::Fail("chi not covered by lambda at fragment node " +
                                std::to_string(u));
      }
    }
  }

  // Condition (2): every edge of E' covered by some bag; every special edge
  // covered by a leaf labelled with it.
  bool all_edges_covered = true;
  std::string missing_edge;
  sub.edges.ForEach([&](int e) {
    for (int u = 0; u < n; ++u) {
      if (graph.edge_vertices(e).IsSubsetOf(fragment.node(u).chi)) return;
    }
    all_edges_covered = false;
    missing_edge = graph.edge_name(e);
  });
  if (!all_edges_covered) {
    return Validation::Fail("edge " + missing_edge + " covered by no fragment bag");
  }
  for (int s : sub.specials) {
    bool found = false;
    for (int u = 0; u < n && !found; ++u) {
      found = fragment.node(u).special == s;
    }
    if (!found) {
      return Validation::Fail("special edge " + std::to_string(s) +
                              " has no leaf");
    }
  }

  // Condition (3): connectedness over the vertices of E' ∪ Sp.
  util::DynamicBitset relevant = VerticesOf(graph, registry, sub);
  {
    std::vector<int> nodes_with(graph.num_vertices(), 0);
    std::vector<int> edges_with(graph.num_vertices(), 0);
    for (int u = 0; u < n; ++u) {
      fragment.node(u).chi.ForEach([&](int v) { ++nodes_with[v]; });
      if (parent[u] >= 0) {
        const auto& pchi = fragment.node(parent[u]).chi;
        fragment.node(u).chi.ForEach([&](int v) {
          if (pchi.Test(v)) ++edges_with[v];
        });
      }
    }
    bool ok = true;
    int bad_vertex = -1;
    relevant.ForEach([&](int v) {
      if (nodes_with[v] > 0 && edges_with[v] != nodes_with[v] - 1) {
        ok = false;
        bad_vertex = v;
      }
    });
    if (!ok) {
      return Validation::Fail("fragment connectedness violated for vertex " +
                              std::to_string(bad_vertex));
    }
  }

  // Condition (4): special condition within the fragment.
  {
    std::vector<util::DynamicBitset> subtree(n,
                                             util::DynamicBitset(graph.num_vertices()));
    std::function<void(int)> accumulate = [&](int u) {
      subtree[u] = fragment.node(u).chi;
      for (int c : fragment.node(u).children) {
        accumulate(c);
        subtree[u].InplaceOr(subtree[c]);
      }
    };
    accumulate(fragment.root());
    for (int u = 0; u < n; ++u) {
      const FragmentNode& node = fragment.node(u);
      util::DynamicBitset lambda_union =
          node.IsSpecialLeaf() ? registry.vertices(node.special)
                               : graph.UnionOfEdges(node.lambda);
      if (!(subtree[u] & lambda_union).IsSubsetOf(node.chi)) {
        return Validation::Fail("fragment special condition violated at node " +
                                std::to_string(u));
      }
    }
  }

  // Condition (6): Conn ⊆ χ(root).
  if (!conn.IsSubsetOf(fragment.node(fragment.root()).chi)) {
    return Validation::Fail("Conn not contained in root bag");
  }
  return Validation::Ok();
}

Validation CheckNormalForm(const Hypergraph& graph, const Decomposition& decomp) {
  if (decomp.root() < 0) return Validation::Ok();
  const int n = decomp.num_nodes();
  SpecialEdgeRegistry empty_registry(graph.num_vertices());
  ExtendedSubhypergraph full = ExtendedSubhypergraph::FullGraph(graph);

  // cov(u): edges covered first at u (no ancestor covers them). We compute,
  // for every edge, the set of covering nodes, then mark cover-first nodes.
  std::vector<std::vector<int>> first_cover(n);  // node -> edges first covered
  {
    std::vector<int> parent(n);
    for (int u = 0; u < n; ++u) parent[u] = decomp.node(u).parent;
    for (int e = 0; e < graph.num_edges(); ++e) {
      for (int u = 0; u < n; ++u) {
        if (!graph.edge_vertices(e).IsSubsetOf(decomp.node(u).chi)) continue;
        bool ancestor_covers = false;
        for (int a = parent[u]; a != -1; a = parent[a]) {
          if (graph.edge_vertices(e).IsSubsetOf(decomp.node(a).chi)) {
            ancestor_covers = true;
            break;
          }
        }
        if (!ancestor_covers) first_cover[u].push_back(e);
      }
    }
  }
  // cov(T_c) via DFS accumulation.
  std::vector<util::DynamicBitset> cov_subtree(n,
                                               util::DynamicBitset(graph.num_edges()));
  std::function<void(int)> accumulate = [&](int u) {
    for (int e : first_cover[u]) cov_subtree[u].Set(e);
    for (int c : decomp.node(u).children) {
      accumulate(c);
      cov_subtree[u].InplaceOr(cov_subtree[c]);
    }
  };
  accumulate(decomp.root());

  for (int p = 0; p < n; ++p) {
    ComponentSplit split =
        SplitComponents(graph, empty_registry, full, decomp.node(p).chi);
    for (int c : decomp.node(p).children) {
      // Condition 1: cov(T_c) equals exactly one [χ(p)]-component.
      int matching = -1;
      for (size_t i = 0; i < split.components.size(); ++i) {
        if (split.components[i].edges == cov_subtree[c]) {
          matching = static_cast<int>(i);
          break;
        }
      }
      if (matching == -1) {
        return Validation::Fail("normal form cond. 1 violated at child " +
                                std::to_string(c));
      }
      // Condition 2: some edge of the component is covered by χ(c).
      bool progress = false;
      split.components[matching].edges.ForEach([&](int e) {
        if (graph.edge_vertices(e).IsSubsetOf(decomp.node(c).chi)) progress = true;
      });
      if (!progress) {
        return Validation::Fail("normal form cond. 2 violated at child " +
                                std::to_string(c));
      }
      // Condition 3: χ(c) = ⋃λ(c) ∩ ⋃C_p.
      util::DynamicBitset expected = graph.UnionOfEdges(decomp.node(c).lambda) &
                                     split.component_vertices[matching];
      if (expected != decomp.node(c).chi) {
        return Validation::Fail("normal form cond. 3 violated at child " +
                                std::to_string(c));
      }
    }
  }
  return Validation::Ok();
}

}  // namespace htd
