#include "decomp/normal_form.h"

#include <algorithm>
#include <functional>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "decomp/components.h"
#include "decomp/special_edges.h"
#include "decomp/validation.h"
#include "util/logging.h"

namespace htd {
namespace {

/// Unique λ-labels of the input decomposition, each as a sorted edge-id
/// vector with its ⋃λ vertex set precomputed.
struct CandidateLabel {
  std::vector<int> lambda;
  util::DynamicBitset lambda_union;
};

std::vector<CandidateLabel> HarvestLabels(const Hypergraph& graph,
                                          const Decomposition& decomp) {
  std::vector<CandidateLabel> labels;
  std::unordered_set<size_t> seen;
  for (int u = 0; u < decomp.num_nodes(); ++u) {
    std::vector<int> lambda = decomp.node(u).lambda;
    std::sort(lambda.begin(), lambda.end());
    util::DynamicBitset as_bits =
        util::DynamicBitset::FromVector(graph.num_edges(), lambda);
    if (!seen.insert(as_bits.Hash()).second) continue;  // rare collision: dup try
    labels.push_back({std::move(lambda), graph.UnionOfEdges(as_bits)});
  }
  return labels;
}

/// Key for the failure memo: a subproblem is the component edge set plus its
/// upward interface.
struct SubproblemKey {
  util::DynamicBitset edges;
  util::DynamicBitset conn;
  bool operator==(const SubproblemKey& other) const {
    return edges == other.edges && conn == other.conn;
  }
};

struct SubproblemKeyHash {
  size_t operator()(const SubproblemKey& key) const {
    return key.edges.Hash() * 1000003u + key.conn.Hash();
  }
};

/// Temporary owned tree: failed search branches are dropped whole, so the
/// final Decomposition contains exactly the successful nodes.
struct NfNode {
  std::vector<int> lambda;
  util::DynamicBitset chi;
  std::vector<std::unique_ptr<NfNode>> children;
};

class Normalizer {
 public:
  Normalizer(const Hypergraph& graph, std::vector<CandidateLabel> labels)
      : graph_(graph),
        registry_(graph.num_vertices()),
        labels_(std::move(labels)) {}

  util::StatusOr<Decomposition> Run() {
    // Root loop: χ(r) = ⋃λ(r) (the minimal rule intersected with V(H)), then
    // one child subtree per [χ(r)]-component.
    for (const CandidateLabel& label : labels_) {
      NfNode root{label.lambda, label.lambda_union, {}};
      ExtendedSubhypergraph full = ExtendedSubhypergraph::FullGraph(graph_);
      ComponentSplit split =
          SplitComponents(graph_, registry_, full, label.lambda_union);
      if (BuildChildren(split, label.lambda_union, root)) {
        return Materialize(root);
      }
    }
    return util::Status::Internal(
        "label-restricted normal-form reconstruction failed; input was not a "
        "valid HD");
  }

 private:
  /// Builds one child subtree per component of `split` below `parent`.
  bool BuildChildren(const ComponentSplit& split,
                     const util::DynamicBitset& parent_chi, NfNode& parent) {
    for (size_t i = 0; i < split.components.size(); ++i) {
      util::DynamicBitset conn = split.component_vertices[i] & parent_chi;
      std::unique_ptr<NfNode> child =
          BuildSubtree(split.components[i].edges, split.component_vertices[i], conn);
      if (child == nullptr) return false;
      parent.children.push_back(std::move(child));
    }
    return true;
  }

  /// Decomposes one [χ(p)]-component: finds a label with the normal-form
  /// properties and recurses into the [χ(c)]-subcomponents. Returns nullptr
  /// if no candidate label works.
  std::unique_ptr<NfNode> BuildSubtree(const util::DynamicBitset& component_edges,
                                       const util::DynamicBitset& component_vertices,
                                       const util::DynamicBitset& conn) {
    SubproblemKey key{component_edges, conn};
    if (failed_.count(key) > 0) return nullptr;

    ExtendedSubhypergraph sub;
    sub.edges = component_edges;
    sub.edge_count = component_edges.Count();

    for (const CandidateLabel& label : labels_) {
      // Normal-form condition 3 (minimal χ): χ(c) = ⋃λ(c) ∩ ⋃C_p.
      util::DynamicBitset chi = label.lambda_union & component_vertices;
      // Upward connectedness: the interface to the parent must reappear.
      if (!conn.IsSubsetOf(chi)) continue;

      ComponentSplit split = SplitComponents(graph_, registry_, sub, chi);
      // Normal-form condition 2 (progress): some edge of the component is
      // covered here for the first time.
      if (split.covered.edge_count == 0) continue;

      auto node = std::make_unique<NfNode>(NfNode{label.lambda, chi, {}});
      if (BuildChildren(split, chi, *node)) return node;
      // Children unreachable with this label: try the next candidate.
    }
    failed_.insert(key);
    return nullptr;
  }

  Decomposition Materialize(const NfNode& root) const {
    Decomposition result;
    std::function<void(const NfNode&, int)> emit = [&](const NfNode& node,
                                                       int parent) {
      const int id = result.AddNode(node.lambda, node.chi, parent);
      for (const auto& child : node.children) emit(*child, id);
    };
    emit(root, -1);
    return result;
  }

  const Hypergraph& graph_;
  SpecialEdgeRegistry registry_;
  std::vector<CandidateLabel> labels_;
  std::unordered_set<SubproblemKey, SubproblemKeyHash> failed_;
};

}  // namespace

util::StatusOr<Decomposition> NormalizeHd(const Hypergraph& graph,
                                          const Decomposition& decomp) {
  Validation input_valid = ValidateHd(graph, decomp);
  if (!input_valid) {
    return util::Status::InvalidArgument("NormalizeHd: input is not an HD: " +
                                         input_valid.error);
  }
  Normalizer normalizer(graph, HarvestLabels(graph, decomp));
  return normalizer.Run();
}

std::vector<util::DynamicBitset> FirstCoverPerSubtree(
    const Hypergraph& graph, const Decomposition& decomp) {
  const int n = decomp.num_nodes();
  const int m = graph.num_edges();
  std::vector<util::DynamicBitset> cov_subtree(n, util::DynamicBitset(m));
  if (n == 0) return cov_subtree;

  // For every edge, mark the nodes covering it; a node first-covers the edge
  // if no ancestor covers it. (An edge can be first-covered at several
  // incomparable nodes; by connectedness they never share a subtree-disjoint
  // ancestor pair, which is what Lemma 3.10 relies on.)
  std::vector<std::vector<int>> first_cover(n);
  for (int e = 0; e < m; ++e) {
    for (int u = 0; u < n; ++u) {
      if (!graph.edge_vertices(e).IsSubsetOf(decomp.node(u).chi)) continue;
      bool ancestor_covers = false;
      for (int a = decomp.node(u).parent; a != -1; a = decomp.node(a).parent) {
        if (graph.edge_vertices(e).IsSubsetOf(decomp.node(a).chi)) {
          ancestor_covers = true;
          break;
        }
      }
      if (!ancestor_covers) first_cover[u].push_back(e);
    }
  }

  std::function<void(int)> accumulate = [&](int u) {
    for (int e : first_cover[u]) cov_subtree[u].Set(e);
    for (int c : decomp.node(u).children) {
      accumulate(c);
      cov_subtree[u].InplaceOr(cov_subtree[c]);
    }
  };
  accumulate(decomp.root());
  return cov_subtree;
}

int FindBalancedSeparatorNode(const Hypergraph& graph,
                              const Decomposition& decomp) {
  HTD_CHECK_GE(decomp.root(), 0) << "decomposition has no root";
  std::vector<util::DynamicBitset> cov = FirstCoverPerSubtree(graph, decomp);
  const int total = graph.num_edges();

  // Proof walk of Lemma 3.10: descend into the (unique) child subtree that
  // covers more than half, until none does.
  int u = decomp.root();
  while (true) {
    int oversized = -1;
    for (int c : decomp.node(u).children) {
      if (2 * cov[c].Count() > total) {
        HTD_CHECK_EQ(oversized, -1) << "two oversized siblings cannot exist";
        oversized = c;
      }
    }
    if (oversized == -1) return u;
    u = oversized;
  }
}

}  // namespace htd
