#include "decomp/fragment_codec.h"

#include <algorithm>

namespace htd {

size_t PortableFragment::ApproxBytes() const {
  size_t bytes = sizeof(PortableFragment);
  for (const PortableFragmentNode& node : nodes) {
    bytes += sizeof(PortableFragmentNode);
    bytes += (node.lambda.size() + node.chi.size() + node.children.size()) *
             sizeof(int);
  }
  return bytes;
}

std::optional<PortableFragment> EncodeFragment(const Fragment& fragment,
                                               const IdMapFn& edge_token,
                                               const IdMapFn& vertex_token,
                                               const IdMapFn& special_token) {
  if (fragment.root() < 0 || fragment.root() >= fragment.num_nodes()) {
    return std::nullopt;
  }
  PortableFragment portable;
  portable.nodes.reserve(fragment.num_nodes());
  for (int i = 0; i < fragment.num_nodes(); ++i) {
    const FragmentNode& node = fragment.node(i);
    PortableFragmentNode out;
    if (node.IsSpecialLeaf()) {
      out.special = special_token(node.special);
      if (out.special < 0) return std::nullopt;
    } else {
      if (node.lambda.empty()) return std::nullopt;
      for (int e : node.lambda) {
        int token = edge_token(e);
        if (token < 0) return std::nullopt;
        out.lambda.push_back(token);
      }
      std::sort(out.lambda.begin(), out.lambda.end());
    }
    bool ok = true;
    node.chi.ForEach([&](int v) {
      int token = vertex_token(v);
      if (token < 0) ok = false;
      out.chi.push_back(token);
    });
    if (!ok) return std::nullopt;
    std::sort(out.chi.begin(), out.chi.end());
    out.children = node.children;
    portable.nodes.push_back(std::move(out));
  }
  portable.root = fragment.root();
  return portable;
}

std::optional<Fragment> DecodeFragment(const PortableFragment& portable,
                                       int num_base_vertices,
                                       const IdMapFn& edge_of_token,
                                       const IdMapFn& vertex_of_token,
                                       const IdMapFn& special_of_token) {
  const int num_nodes = static_cast<int>(portable.nodes.size());
  if (portable.root < 0 || portable.root >= num_nodes) return std::nullopt;
  Fragment fragment;
  for (const PortableFragmentNode& node : portable.nodes) {
    util::DynamicBitset chi(num_base_vertices);
    for (int token : node.chi) {
      int v = vertex_of_token(token);
      if (v < 0 || v >= num_base_vertices) return std::nullopt;
      chi.Set(v);
    }
    if (node.special >= 0) {
      int special = special_of_token(node.special);
      if (special < 0) return std::nullopt;
      fragment.AddSpecialLeaf(special, std::move(chi));
    } else {
      if (node.lambda.empty()) return std::nullopt;
      std::vector<int> lambda;
      lambda.reserve(node.lambda.size());
      for (int token : node.lambda) {
        int e = edge_of_token(token);
        if (e < 0) return std::nullopt;
        lambda.push_back(e);
      }
      // Distinct tokens may decode to one edge (equal traces); λ is a set.
      std::sort(lambda.begin(), lambda.end());
      lambda.erase(std::unique(lambda.begin(), lambda.end()), lambda.end());
      fragment.AddNode(std::move(lambda), std::move(chi));
    }
  }
  for (int i = 0; i < num_nodes; ++i) {
    for (int child : portable.nodes[i].children) {
      if (child < 0 || child >= num_nodes || child == i) return std::nullopt;
      fragment.AddChild(i, child);
    }
  }
  fragment.SetRoot(portable.root);
  return fragment;
}

}  // namespace htd
