#include "decomp/decomp_writer.h"

#include <sstream>

namespace htd {
namespace {

std::string JoinLambda(const Hypergraph& graph, const DecompNode& node,
                       const char* separator) {
  std::ostringstream out;
  for (size_t i = 0; i < node.lambda.size(); ++i) {
    if (i > 0) out << separator;
    out << graph.edge_name(node.lambda[i]);
  }
  return out.str();
}

std::string JoinChi(const Hypergraph& graph, const DecompNode& node,
                    const char* separator) {
  std::ostringstream out;
  bool first = true;
  node.chi.ForEach([&](int v) {
    if (!first) out << separator;
    out << graph.vertex_name(v);
    first = false;
  });
  return out.str();
}

}  // namespace

std::string WriteDecompositionGml(const Hypergraph& graph,
                                  const Decomposition& decomp) {
  std::ostringstream out;
  out << "graph [\n  directed 1\n";
  for (int u = 0; u < decomp.num_nodes(); ++u) {
    const DecompNode& node = decomp.node(u);
    out << "  node [\n    id " << u << "\n    label \"{"
        << JoinLambda(graph, node, ", ") << "}  {" << JoinChi(graph, node, ", ")
        << "}\"\n  ]\n";
  }
  for (int u = 0; u < decomp.num_nodes(); ++u) {
    if (decomp.node(u).parent >= 0) {
      out << "  edge [\n    source " << decomp.node(u).parent << "\n    target "
          << u << "\n  ]\n";
    }
  }
  out << "]\n";
  return out.str();
}

std::string WriteDecompositionJson(const Hypergraph& graph,
                                   const Decomposition& decomp) {
  std::ostringstream out;
  out << "{\"width\": " << decomp.Width() << ", \"nodes\": [";
  for (int u = 0; u < decomp.num_nodes(); ++u) {
    const DecompNode& node = decomp.node(u);
    if (u > 0) out << ", ";
    out << "{\"id\": " << u << ", \"parent\": " << node.parent << ", \"lambda\": [";
    for (size_t i = 0; i < node.lambda.size(); ++i) {
      if (i > 0) out << ", ";
      out << "\"" << graph.edge_name(node.lambda[i]) << "\"";
    }
    out << "], \"chi\": [";
    bool first = true;
    node.chi.ForEach([&](int v) {
      if (!first) out << ", ";
      out << "\"" << graph.vertex_name(v) << "\"";
      first = false;
    });
    out << "]}";
  }
  out << "]}";
  return out.str();
}

}  // namespace htd
