#include "decomp/components.h"

#include <algorithm>
#include <numeric>

namespace htd {
namespace {

// Small union-find over item indices.
class UnionFind {
 public:
  explicit UnionFind(int n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  int Find(int x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(int a, int b) {
    a = Find(a);
    b = Find(b);
    if (a != b) parent_[a] = b;
  }

 private:
  std::vector<int> parent_;
};

}  // namespace

int ComponentSplit::MaxComponentSize() const {
  int max_size = 0;
  for (const auto& c : components) max_size = std::max(max_size, c.size());
  return max_size;
}

int ComponentSplit::FindOversized(int total) const {
  for (size_t i = 0; i < components.size(); ++i) {
    if (components[i].size() * 2 > total) return static_cast<int>(i);
  }
  return -1;
}

ComponentSplit SplitComponents(const Hypergraph& graph,
                               const SpecialEdgeRegistry& registry,
                               const ExtendedSubhypergraph& sub,
                               const util::DynamicBitset& separator) {
  // Item indexing: 0..edge_count-1 are sub's edges (in bitset order), then
  // one item per special edge.
  std::vector<int> edge_ids;
  edge_ids.reserve(sub.edge_count);
  sub.edges.ForEach([&](int e) { edge_ids.push_back(e); });
  const int num_edges = static_cast<int>(edge_ids.size());
  const int num_items = num_edges + static_cast<int>(sub.specials.size());

  UnionFind uf(num_items);
  std::vector<int> vertex_owner(graph.num_vertices(), -1);
  std::vector<bool> outside(num_items, false);  // has a vertex outside U

  auto visit = [&](int item, int v) {
    if (separator.Test(v)) return;
    outside[item] = true;
    if (vertex_owner[v] == -1) {
      vertex_owner[v] = item;
    } else {
      uf.Union(item, vertex_owner[v]);
    }
  };

  for (int i = 0; i < num_edges; ++i) {
    for (int v : graph.edge_vertex_list(edge_ids[i])) visit(i, v);
  }
  for (size_t s = 0; s < sub.specials.size(); ++s) {
    int item = num_edges + static_cast<int>(s);
    registry.vertices(sub.specials[s]).ForEach([&](int v) { visit(item, v); });
  }

  ComponentSplit split;
  split.covered.edges = util::DynamicBitset(graph.num_edges());
  std::vector<int> component_of_root;  // lazily assigned component indices

  std::vector<int> item_component(num_items, -1);
  std::vector<int> root_to_component(num_items, -1);
  for (int item = 0; item < num_items; ++item) {
    if (!outside[item]) continue;  // covered by the separator
    int root = uf.Find(item);
    if (root_to_component[root] == -1) {
      root_to_component[root] = static_cast<int>(split.components.size());
      ExtendedSubhypergraph comp;
      comp.edges = util::DynamicBitset(graph.num_edges());
      split.components.push_back(std::move(comp));
      split.component_vertices.emplace_back(graph.num_vertices());
    }
    item_component[item] = root_to_component[root];
  }

  for (int i = 0; i < num_edges; ++i) {
    int e = edge_ids[i];
    if (item_component[i] == -1) {
      split.covered.edges.Set(e);
      ++split.covered.edge_count;
    } else {
      auto& comp = split.components[item_component[i]];
      comp.edges.Set(e);
      ++comp.edge_count;
      for (int v : graph.edge_vertex_list(e)) {
        split.component_vertices[item_component[i]].Set(v);
      }
    }
  }
  for (size_t s = 0; s < sub.specials.size(); ++s) {
    int item = num_edges + static_cast<int>(s);
    int special_id = sub.specials[s];
    if (item_component[item] == -1) {
      split.covered.specials.push_back(special_id);
    } else {
      auto& comp = split.components[item_component[item]];
      comp.specials.push_back(special_id);
      split.component_vertices[item_component[item]].InplaceOr(
          registry.vertices(special_id));
    }
  }
  return split;
}

}  // namespace htd
