#include "decomp/decomp_reader.h"

#include <algorithm>
#include <cctype>
#include <functional>
#include <map>
#include <string>
#include <vector>

namespace htd {
namespace {

using util::Status;
using util::StatusOr;

/// Minimal recursive-descent scanner for the decomposition JSON schema.
/// Deliberately not a general JSON library: objects/arrays/strings/ints are
/// all this format contains, and precise error positions matter more here
/// than generality.
class JsonScanner {
 public:
  explicit JsonScanner(std::string_view text) : text_(text) {}

  Status Error(const std::string& message) const {
    return Status::InvalidArgument("decomposition JSON, offset " +
                                   std::to_string(pos_) + ": " + message);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool AtEnd() {
    SkipWhitespace();
    return pos_ >= text_.size();
  }

  StatusOr<std::string> ParseString() {
    SkipWhitespace();
    if (!Consume('"')) return Error("expected string");
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) return Error("dangling escape");
        out.push_back(text_[pos_++]);
      } else {
        out.push_back(c);
      }
    }
    if (pos_ >= text_.size()) return Error("unterminated string");
    ++pos_;  // closing quote
    return out;
  }

  StatusOr<long> ParseInt() {
    SkipWhitespace();
    size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) ++pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected integer");
    return std::stol(std::string(text_.substr(start, pos_ - start)));
  }

  StatusOr<std::vector<std::string>> ParseStringArray() {
    if (!Consume('[')) return Error("expected '['");
    std::vector<std::string> items;
    if (Consume(']')) return items;
    while (true) {
      StatusOr<std::string> item = ParseString();
      if (!item.ok()) return item.status();
      items.push_back(*std::move(item));
      if (Consume(']')) return items;
      if (!Consume(',')) return Error("expected ',' or ']'");
    }
  }

 private:
  std::string_view text_;
  size_t pos_ = 0;
};

struct NodeEntry {
  long id = -1;
  long parent = -2;  // -2 = missing
  std::vector<std::string> lambda;
  std::vector<std::string> chi;
};

}  // namespace

StatusOr<Decomposition> ParseDecompositionJson(const Hypergraph& graph,
                                               std::string_view text) {
  JsonScanner scanner(text);
  if (!scanner.Consume('{')) return scanner.Error("expected top-level object");

  long declared_width = -1;
  std::vector<NodeEntry> entries;
  bool saw_nodes = false;

  while (true) {
    StatusOr<std::string> key = scanner.ParseString();
    if (!key.ok()) return key.status();
    if (!scanner.Consume(':')) return scanner.Error("expected ':'");

    if (*key == "width") {
      StatusOr<long> width = scanner.ParseInt();
      if (!width.ok()) return width.status();
      declared_width = *width;
    } else if (*key == "nodes") {
      saw_nodes = true;
      if (!scanner.Consume('[')) return scanner.Error("expected '[' after nodes");
      if (!scanner.Consume(']')) {
        while (true) {
          if (!scanner.Consume('{')) return scanner.Error("expected node object");
          NodeEntry entry;
          while (true) {
            StatusOr<std::string> field = scanner.ParseString();
            if (!field.ok()) return field.status();
            if (!scanner.Consume(':')) return scanner.Error("expected ':'");
            if (*field == "id" || *field == "parent") {
              StatusOr<long> value = scanner.ParseInt();
              if (!value.ok()) return value.status();
              (*field == "id" ? entry.id : entry.parent) = *value;
            } else if (*field == "lambda" || *field == "chi") {
              StatusOr<std::vector<std::string>> names = scanner.ParseStringArray();
              if (!names.ok()) return names.status();
              (*field == "lambda" ? entry.lambda : entry.chi) = *std::move(names);
            } else {
              return scanner.Error("unknown node field '" + *field + "'");
            }
            if (scanner.Consume('}')) break;
            if (!scanner.Consume(',')) return scanner.Error("expected ',' or '}'");
          }
          entries.push_back(std::move(entry));
          if (scanner.Consume(']')) break;
          if (!scanner.Consume(',')) return scanner.Error("expected ',' or ']'");
        }
      }
    } else {
      return scanner.Error("unknown top-level field '" + *key + "'");
    }
    if (scanner.Consume('}')) break;
    if (!scanner.Consume(',')) return scanner.Error("expected ',' or '}'");
  }
  if (!scanner.AtEnd()) return scanner.Error("trailing content");
  if (!saw_nodes) return Status::InvalidArgument("decomposition JSON: no nodes");
  if (entries.empty()) {
    return Status::InvalidArgument("decomposition JSON: empty node list");
  }

  // Resolve ids: they may appear in any order but must be unique, and parent
  // references must resolve (exactly one root with parent -1, no cycles).
  std::map<long, int> id_to_index;
  for (size_t i = 0; i < entries.size(); ++i) {
    if (entries[i].id < 0) return Status::InvalidArgument("node without valid id");
    if (entries[i].parent == -2) {
      return Status::InvalidArgument("node " + std::to_string(entries[i].id) +
                                     " without parent field");
    }
    if (!id_to_index.emplace(entries[i].id, static_cast<int>(i)).second) {
      return Status::InvalidArgument("duplicate node id " +
                                     std::to_string(entries[i].id));
    }
  }

  int roots = 0;
  for (const NodeEntry& entry : entries) {
    if (entry.parent == -1) {
      ++roots;
    } else if (id_to_index.count(entry.parent) == 0) {
      return Status::InvalidArgument("node " + std::to_string(entry.id) +
                                     " references unknown parent " +
                                     std::to_string(entry.parent));
    }
  }
  if (roots != 1) {
    return Status::InvalidArgument("expected exactly one root, found " +
                                   std::to_string(roots));
  }

  // Parent-before-child insertion order via DFS from the root; a node never
  // reached this way sits on a parent cycle.
  std::vector<std::vector<int>> children(entries.size());
  int root_index = -1;
  for (size_t i = 0; i < entries.size(); ++i) {
    if (entries[i].parent == -1) {
      root_index = static_cast<int>(i);
    } else {
      children[id_to_index[entries[i].parent]].push_back(static_cast<int>(i));
    }
  }
  std::vector<int> order;
  std::function<void(int)> visit = [&](int i) {
    order.push_back(i);
    for (int c : children[i]) visit(c);
  };
  visit(root_index);
  if (order.size() != entries.size()) {
    return Status::InvalidArgument("parent references contain a cycle");
  }

  Decomposition decomp;
  std::vector<int> new_id(entries.size(), -1);
  for (int i : order) {
    const NodeEntry& entry = entries[i];
    std::vector<int> lambda;
    for (const std::string& name : entry.lambda) {
      int e = graph.FindEdge(name);
      if (e < 0) return Status::NotFound("unknown edge name '" + name + "'");
      lambda.push_back(e);
    }
    std::sort(lambda.begin(), lambda.end());
    util::DynamicBitset chi(graph.num_vertices());
    for (const std::string& name : entry.chi) {
      int v = graph.FindVertex(name);
      if (v < 0) return Status::NotFound("unknown vertex name '" + name + "'");
      chi.Set(v);
    }
    int parent_new = entry.parent == -1 ? -1 : new_id[id_to_index[entry.parent]];
    new_id[i] = decomp.AddNode(std::move(lambda), std::move(chi), parent_new);
  }

  if (declared_width >= 0 && declared_width != decomp.Width()) {
    return Status::InvalidArgument(
        "declared width " + std::to_string(declared_width) +
        " does not match actual width " + std::to_string(decomp.Width()));
  }
  return decomp;
}

}  // namespace htd
