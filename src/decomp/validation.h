// Condition-by-condition validators for decompositions.
//
// These implement, literally, the definitions of the paper:
//  * ValidateGhd  — GHD conditions (1)-(3) of §2,
//  * ValidateHd   — the above plus the special condition (4),
//  * ValidateExtendedHd — Definition 3.3 (conditions 1-6) for HD-fragments of
//    extended subhypergraphs,
//  * CheckNormalForm — Definition 3.5 (the minimal-χ normal form).
//
// Every decomposition produced by any solver in this repository is expected
// to pass the relevant validator; the test suite enforces this on every
// instance family.
#pragma once

#include <string>

#include "decomp/decomposition.h"
#include "decomp/extended_subhypergraph.h"
#include "decomp/fragment.h"
#include "hypergraph/hypergraph.h"

namespace htd {

struct Validation {
  bool ok = true;
  std::string error;

  static Validation Ok() { return Validation{}; }
  static Validation Fail(std::string message) { return Validation{false, std::move(message)}; }
  explicit operator bool() const { return ok; }
};

/// GHD check: (1) every edge covered by some bag, (2) connectedness of every
/// vertex, (3) χ(u) ⊆ ⋃λ(u).
Validation ValidateGhd(const Hypergraph& graph, const Decomposition& decomp);

/// HD check: GHD conditions plus (4) the special condition
/// χ(T_u) ∩ ⋃λ(u) ⊆ χ(u).
Validation ValidateHd(const Hypergraph& graph, const Decomposition& decomp);

/// Validates that `decomp` is an HD of `graph` with width at most `k`.
Validation ValidateHdWithWidth(const Hypergraph& graph, const Decomposition& decomp,
                               int k);

/// Definition 3.3: HD of the extended subhypergraph ⟨sub.E, sub.Sp, conn⟩.
Validation ValidateExtendedHd(const Hypergraph& graph,
                              const SpecialEdgeRegistry& registry,
                              const ExtendedSubhypergraph& sub,
                              const util::DynamicBitset& conn,
                              const Fragment& fragment);

/// Definition 3.5 (normal form) for an HD of the full hypergraph, i.e. of the
/// extended subhypergraph ⟨E(H), ∅, ∅⟩.
Validation CheckNormalForm(const Hypergraph& graph, const Decomposition& decomp);

}  // namespace htd
