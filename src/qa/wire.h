// HTDQUERY1: the strict text wire format for query-answering requests.
//
// A request carries a conjunctive query plus the database it is evaluated
// on. Like HTDDIGEST1 (service/anti_entropy.h), the format is line-oriented,
// canonical, and STRICT: there is exactly one byte sequence for any given
// (query, database), and the parser rejects everything else — wrong counts,
// non-canonical integers, unsorted or duplicate tuples, unexpected
// whitespace, missing trailing newline, trailing bytes. A parsed request
// re-renders byte-identically, which is what the fuzz tests pin.
//
//   HTDQUERY1 <num_relations>
//   QUERY <atoms joined ", ", variables joined ",", trailing '.'>
//   REL <name> <arity> <num_tuples>
//   <num_tuples lines: arity base-10 int64s joined by single spaces,
//    strictly lexicographically ascending (sorted set semantics)>
//   ... one REL block per distinct relation symbol, in the order the
//       symbols first appear in the query ...
//   END
//
// Example:
//   HTDQUERY1 2
//   QUERY R(X,Y), S(Y,Z).
//   REL R 2 2
//   1 2
//   3 2
//   REL S 2 1
//   2 7
//   END
#pragma once

#include <string>

#include "cq/database.h"
#include "cq/query.h"
#include "util/status.h"

namespace htd::qa {

/// A decoded query-answering request.
struct QueryRequest {
  cq::Query query;
  cq::Database db;
};

/// Canonical text of a query: atoms joined by ", ", argument lists joined by
/// ",", one trailing '.'. ParseQuery(RenderQueryText(q)) reproduces q.
std::string RenderQueryText(const cq::Query& query);

/// Renders the canonical HTDQUERY1 document for (query, db). Tuples are
/// sorted and deduplicated (set semantics), so logically equal inputs render
/// identically. Fails with InvalidArgument when the query has no atoms, a
/// relation symbol is used at two different arities, a relation is missing
/// from the database, or a stored arity disagrees with the query.
util::StatusOr<std::string> RenderQueryRequest(const cq::Query& query,
                                               const cq::Database& db);

/// Strict inverse of RenderQueryRequest. Accepts exactly the canonical form:
/// any accepted `text` satisfies RenderQueryRequest(parsed) == text.
util::StatusOr<QueryRequest> ParseQueryRequest(const std::string& text);

}  // namespace htd::qa
