// QueryEngine: decompose-and-execute conjunctive-query answering.
//
// The end-to-end loop the paper's introduction motivates (and the line of
// work Gottlob–Leone–Scarcello opened): a query's hypergraph is decomposed
// THROUGH the DecompositionService — so the whole warm path (result cache,
// single-flight scheduler, subproblem store, and, one layer up, the shard
// fleet) is exercised — and the resulting join tree drives Yannakakis
// evaluation (cq/yannakakis.h) for a witness and, optionally, the exact
// answer count.
//
// Decomposition probes k = 1, 2, ... like FindOptimalWidth, but every probe
// is a service submission: a warm fleet answers the whole sweep from the
// result cache (kNo probes are cached too). After the first kYes, a few
// higher-k probes run to diversify the portfolio (qa/portfolio.h), which
// then picks the cheapest tree for THIS database's cardinalities.
//
// Observability (PR 6 conventions): per-stage spans "decompose" / "pick" /
// "execute" under the caller's trace parent, htd_query_seconds{stage=...}
// histograms, htd_queries_total{outcome=...} and
// htd_query_portfolio_picks_total{pick=first|alternative} counters — all on
// the service's registry so /v1/metrics renders them.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>

#include "cq/database.h"
#include "cq/query.h"
#include "cq/yannakakis.h"
#include "qa/portfolio.h"
#include "service/service.h"
#include "util/status.h"
#include "util/trace.h"

namespace htd::qa {

struct QueryEngineOptions {
  /// Largest width probed. A query whose hypertree width exceeds this is
  /// answered kNoDecomposition rather than evaluated (the executor is only
  /// tractable for bounded width).
  int max_k = 8;
  /// Diversity probes past the first kYes width: higher-k solves usually
  /// return structurally different trees, which is what gives the portfolio
  /// something to choose from. 0 = first-found only.
  int extra_k = 2;
  /// Also run the counting DP when the query is satisfiable.
  bool count_solutions = true;
  PortfolioOptions portfolio;
};

enum class QueryOutcome {
  kSatisfiable,      ///< witness attached (count too when enabled)
  kUnsatisfiable,    ///< evaluated; no satisfying assignment exists
  kNoDecomposition,  ///< hypertree width exceeds max_k; not evaluated
  kDeadline,         ///< timed out (decomposing or before executing)
};

const char* QueryOutcomeName(QueryOutcome outcome);

struct QueryAnswer {
  QueryOutcome outcome = QueryOutcome::kDeadline;
  /// Satisfying assignment, verified against every atom's relation.
  std::unordered_map<std::string, int64_t> witness;
  /// Exact answer count (kSatisfiable/kUnsatisfiable when counting is on).
  cq::SolutionCount count;
  bool counted = false;

  service::Fingerprint fingerprint;
  /// Scores of the executed decomposition (zero when none was executed).
  int width = 0;
  double fractional_width = 0.0;
  double estimated_cost = 0.0;
  int picked_index = 0;      ///< 0 = the first-found baseline tree
  int portfolio_size = 0;
  /// True when EVERY decomposition probe was answered from the result
  /// cache — the warm-path signal the smoke test asserts on.
  bool decompose_cache_hit = false;
  int probes = 0;  ///< service submissions made

  double decompose_seconds = 0.0;
  double pick_seconds = 0.0;
  double execute_seconds = 0.0;
};

class QueryEngine {
 public:
  /// `service` must outlive the engine; its registry receives the metrics.
  QueryEngine(service::DecompositionService* service,
              QueryEngineOptions options = {});

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  /// Answers one query. `timeout_seconds` is an end-to-end deadline over
  /// decompose + pick + execute (0 = none); hitting it yields outcome
  /// kDeadline, not an error Status. Status errors are reserved for invalid
  /// requests (missing relation, arity mismatch) and internal failures.
  /// `trace` parents the per-stage spans; a zero TraceParent records none.
  /// `count_override`, when set, replaces options().count_solutions for this
  /// one call (the server's per-request `count` parameter).
  util::StatusOr<QueryAnswer> Answer(const cq::Query& query,
                                     const cq::Database& db,
                                     double timeout_seconds,
                                     util::TraceParent trace = {},
                                     std::optional<bool> count_override = {});

  DecompositionPortfolio& portfolio() { return portfolio_; }
  const QueryEngineOptions& options() const { return options_; }

 private:
  service::DecompositionService* service_;
  QueryEngineOptions options_;
  DecompositionPortfolio portfolio_;
};

}  // namespace htd::qa
