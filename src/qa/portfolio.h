// A scored store of candidate decompositions per query hypergraph.
//
// The decomposition service memoizes ONE result per (fingerprint, k, solver
// config); for query answering that first-found decomposition is rarely the
// cheapest tree to execute — two width-k trees can differ by orders of
// magnitude in intermediate-join size on a skewed database. The portfolio
// retains up to `capacity_per_key` structurally distinct candidates per
// query hypergraph and picks per query, scoring each candidate by
//
//   * estimated join cost: the AGM-style bound Σ_u Π_e N_e^{x_e}, where
//     (x_e) is an optimal fractional edge cover of χ(u)
//     (fractional/cover.h) — computed once per candidate, re-weighted with
//     the querying database's relation cardinalities N_e at pick time;
//   * fractional width max_u ρ*(χ(u)) and integral width as tie-breakers
//     (cardinality-independent quality), then insertion order.
//
// This is the seeed-pool idea (GCG's explore menu over many candidate
// decompositions) applied to query execution; bench/query_portfolio.cc
// measures the win over always executing the first-found tree.
//
// Keys pair the isomorphism-invariant service fingerprint with a LABELLED
// digest of the concrete hypergraph: a stored Decomposition's λ/χ reference
// concrete edge/vertex ids, so it is only executable against a hypergraph
// with identical numbering. Variable renamings keep the numbering (vertices
// are numbered by first occurrence) and hit; atom reorderings miss safely
// instead of returning a tree whose node labels point at the wrong atoms.
//
// Thread-safe; one instance is shared by every request thread of a server.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "decomp/decomposition.h"
#include "hypergraph/hypergraph.h"
#include "service/canonical.h"

namespace htd::qa {

/// Order- and name-sensitive digest of a hypergraph's concrete structure:
/// equal iff the edge list (in id order) covers the same vertex-id sets.
/// Two graphs with equal digests accept each other's decompositions.
uint64_t LabelledGraphDigest(const Hypergraph& graph);

struct PortfolioOptions {
  /// Structurally distinct candidates retained per query hypergraph. Once
  /// full, a new candidate replaces the worst retained one only if it is
  /// better on (fractional width, width).
  int capacity_per_key = 4;
  /// Distinct query hypergraphs tracked; oldest-inserted key evicted first.
  size_t max_keys = 1024;
};

/// The decomposition selected for one query, with its scores.
struct PortfolioPick {
  Decomposition decomposition;
  int width = 0;
  double fractional_width = 0.0;
  /// AGM-style bound Σ_u Π_e N_e^{x_e} under the given cardinalities.
  double estimated_cost = 0.0;
  /// Index of the candidate in insertion order (0 = first-found).
  int candidate_index = 0;
  /// Candidates retained for this key at pick time.
  int num_candidates = 0;
};

class DecompositionPortfolio {
 public:
  explicit DecompositionPortfolio(PortfolioOptions options = {});

  DecompositionPortfolio(const DecompositionPortfolio&) = delete;
  DecompositionPortfolio& operator=(const DecompositionPortfolio&) = delete;

  /// Offers a candidate decomposition of `graph`. Returns true when it was
  /// retained (new shape and either free capacity or better than the worst
  /// retained candidate); false for duplicates and rejected candidates.
  bool Insert(const service::Fingerprint& fingerprint, const Hypergraph& graph,
              const Decomposition& decomposition);

  /// Picks the best-scoring candidate for `graph` under the per-edge
  /// cardinalities (tuple count of the relation behind each edge/atom;
  /// indexed by edge id). nullopt when no candidate is stored.
  std::optional<PortfolioPick> PickBest(
      const service::Fingerprint& fingerprint, const Hypergraph& graph,
      const std::vector<uint64_t>& edge_cardinalities) const;

  /// The first-found candidate with its scores — the baseline the bench
  /// compares PickBest against.
  std::optional<PortfolioPick> PickFirst(
      const service::Fingerprint& fingerprint, const Hypergraph& graph,
      const std::vector<uint64_t>& edge_cardinalities) const;

  /// Copies of every retained candidate, insertion order (for tests).
  std::vector<Decomposition> Candidates(const service::Fingerprint& fingerprint,
                                        const Hypergraph& graph) const;

  int CandidateCount(const service::Fingerprint& fingerprint,
                     const Hypergraph& graph) const;
  size_t num_keys() const;

 private:
  struct Candidate {
    Decomposition decomposition;
    int width = 0;
    double fractional_width = 0.0;
    /// Optimal fractional edge cover of χ(u) per node: (edge id, weight)
    /// pairs. Cardinality-independent; computed once at insert.
    std::vector<std::vector<std::pair<int, double>>> node_covers;
    /// Digest of the tree structure + labels, for shape dedup.
    uint64_t shape_digest = 0;
  };

  struct Key {
    service::Fingerprint fingerprint;
    uint64_t labelled_digest = 0;
    bool operator==(const Key& other) const {
      return fingerprint == other.fingerprint &&
             labelled_digest == other.labelled_digest;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& key) const {
      return service::FingerprintHash{}(key.fingerprint) ^
             (key.labelled_digest * 0x9e3779b97f4a7c15ull);
    }
  };

  struct Entry {
    std::vector<Candidate> candidates;
    uint64_t inserted_at = 0;  ///< insertion clock, for FIFO key eviction
  };

  static double EstimateCost(const Candidate& candidate,
                             const std::vector<uint64_t>& edge_cardinalities);
  static PortfolioPick MakePick(const Candidate& candidate, int index,
                                int num_candidates,
                                const std::vector<uint64_t>& cardinalities);

  PortfolioOptions options_;
  mutable std::mutex mutex_;
  std::unordered_map<Key, Entry, KeyHash> entries_;
  uint64_t clock_ = 0;
};

}  // namespace htd::qa
