#include "qa/query_engine.h"

#include <algorithm>
#include <chrono>
#include <future>
#include <vector>

#include "util/timer.h"

namespace htd::qa {
namespace {

constexpr double kNoDeadline = 0.0;

// Blocks on a probe future. Async query jobs run Answer() *on* an executor
// worker (background lane), and its probes are flights on that same
// executor — a plain get() would park the worker and, at width 1, deadlock
// the fleet against itself. A worker thread therefore helps run sync/async
// lane work while it waits; any other thread just waits.
service::JobResult AwaitProbe(util::Executor& executor,
                              std::future<service::JobResult>& future) {
  if (executor.OnWorkerThread()) {
    executor.HelpWhileWaiting([&future] {
      return future.wait_for(std::chrono::seconds(0)) ==
             std::future_status::ready;
    });
  }
  return future.get();
}

}  // namespace

const char* QueryOutcomeName(QueryOutcome outcome) {
  switch (outcome) {
    case QueryOutcome::kSatisfiable:
      return "satisfiable";
    case QueryOutcome::kUnsatisfiable:
      return "unsatisfiable";
    case QueryOutcome::kNoDecomposition:
      return "no_decomposition";
    case QueryOutcome::kDeadline:
      return "deadline";
  }
  return "unknown";
}

QueryEngine::QueryEngine(service::DecompositionService* service,
                         QueryEngineOptions options)
    : service_(service), options_(options), portfolio_(options.portfolio) {
  util::MetricsRegistry& metrics = service_->metrics();
  metrics.SetHelp("htd_query_seconds",
                  "Query-answering stage latency (decompose / pick / "
                  "execute) in seconds.");
  metrics.SetHelp("htd_queries_total",
                  "Queries answered by the query engine, by outcome.");
  metrics.SetHelp("htd_query_portfolio_picks_total",
                  "Portfolio selections: first-found tree vs a better-scoring "
                  "alternative.");
}

util::StatusOr<QueryAnswer> QueryEngine::Answer(const cq::Query& query,
                                                const cq::Database& db,
                                                double timeout_seconds,
                                                util::TraceParent trace,
                                                std::optional<bool> count_override) {
  const bool count_solutions =
      count_override.value_or(options_.count_solutions);
  // Schema validation up front: every relation present at the right arity.
  for (const cq::Atom& atom : query.atoms) {
    const cq::Relation* relation = db.Find(atom.relation);
    if (relation == nullptr) {
      return util::Status::InvalidArgument("relation '" + atom.relation +
                                           "' not in database");
    }
    if (relation->arity != static_cast<int>(atom.variables.size())) {
      return util::Status::InvalidArgument("arity mismatch for '" +
                                           atom.relation + "'");
    }
  }
  if (query.atoms.empty()) {
    return util::Status::InvalidArgument("query has no atoms");
  }

  util::MetricsRegistry& metrics = service_->metrics();
  util::WallTimer deadline_timer;
  auto remaining = [&]() -> double {
    if (timeout_seconds <= 0) return kNoDeadline;
    return timeout_seconds - deadline_timer.ElapsedSeconds();
  };
  auto out_of_time = [&]() {
    return timeout_seconds > 0 && remaining() <= 0;
  };

  QueryAnswer answer;
  Hypergraph graph = cq::QueryHypergraph(query);
  answer.fingerprint = service::CanonicalFingerprint(graph);

  auto finish = [&](QueryOutcome outcome) {
    answer.outcome = outcome;
    metrics.GetCounter("htd_queries_total",
                       std::string("outcome=\"") + QueryOutcomeName(outcome) +
                           "\"")
        .Add();
    return answer;
  };

  // Stage 1: decompose through the service — k-sweep plus diversity probes.
  bool all_cache_hits = true;
  int first_yes = -1;
  {
    util::WallTimer timer;
    util::TraceScope span("decompose", trace,
                          static_cast<uint64_t>(graph.num_edges()));
    util::TraceParent probe_trace{span.id(), span.root()};
    int sweep_max = std::min(options_.max_k, graph.num_edges());
    bool deadline_hit = false;
    for (int k = 1; k <= sweep_max; ++k) {
      if (out_of_time()) {
        deadline_hit = true;
        break;
      }
      std::future<service::JobResult> probe =
          service_->Submit(graph, k, remaining(), probe_trace);
      service::JobResult result = AwaitProbe(service_->executor(), probe);
      ++answer.probes;
      if (!result.cache_hit) all_cache_hits = false;
      if (result.result.outcome == Outcome::kCancelled) {
        deadline_hit = true;
        break;
      }
      if (result.result.outcome == Outcome::kError) {
        return util::Status::Internal("decomposition solver failed at k=" +
                                      std::to_string(k));
      }
      if (result.result.outcome == Outcome::kYes) {
        HTD_CHECK(result.result.decomposition.has_value());
        portfolio_.Insert(answer.fingerprint, graph,
                          *result.result.decomposition);
        first_yes = k;
        break;
      }
      // kNo: keep sweeping. Negative results are cached too, so a warm
      // fleet answers the whole sweep without solving.
    }
    if (first_yes > 0) {
      // Diversity probes: higher k admits structurally different trees.
      int upper = std::min(first_yes + options_.extra_k, graph.num_edges());
      for (int k = first_yes + 1; k <= upper; ++k) {
        if (out_of_time()) break;
        std::future<service::JobResult> probe =
            service_->Submit(graph, k, remaining(), probe_trace);
        service::JobResult result = AwaitProbe(service_->executor(), probe);
        ++answer.probes;
        if (!result.cache_hit) all_cache_hits = false;
        if (result.result.outcome != Outcome::kYes) break;
        portfolio_.Insert(answer.fingerprint, graph,
                          *result.result.decomposition);
      }
    }
    answer.decompose_seconds = timer.ElapsedSeconds();
    metrics.GetHistogram("htd_query_seconds", "stage=\"decompose\"")
        .Observe(answer.decompose_seconds);
    answer.decompose_cache_hit = all_cache_hits && answer.probes > 0;
    if (first_yes < 0) {
      return finish(deadline_hit ? QueryOutcome::kDeadline
                                 : QueryOutcome::kNoDecomposition);
    }
  }

  // Stage 2: pick the cheapest retained tree for THIS database.
  PortfolioPick pick;
  {
    util::WallTimer timer;
    util::TraceScope span("pick", trace);
    std::vector<uint64_t> cardinalities(query.atoms.size(), 0);
    for (size_t i = 0; i < query.atoms.size(); ++i) {
      cardinalities[i] = db.Find(query.atoms[i].relation)->tuples.size();
    }
    auto best = portfolio_.PickBest(answer.fingerprint, graph, cardinalities);
    HTD_CHECK(best.has_value()) << "portfolio lost the inserted candidate";
    pick = std::move(*best);
    answer.pick_seconds = timer.ElapsedSeconds();
  }
  metrics.GetHistogram("htd_query_seconds", "stage=\"pick\"")
      .Observe(answer.pick_seconds);
  metrics.GetCounter("htd_query_portfolio_picks_total",
                     pick.candidate_index == 0 ? "pick=\"first\""
                                               : "pick=\"alternative\"")
      .Add();
  answer.width = pick.width;
  answer.fractional_width = pick.fractional_width;
  answer.estimated_cost = pick.estimated_cost;
  answer.picked_index = pick.candidate_index;
  answer.portfolio_size = pick.num_candidates;

  // Stage 3: execute Yannakakis over the picked tree.
  {
    if (out_of_time()) return finish(QueryOutcome::kDeadline);
    util::WallTimer timer;
    util::TraceScope span("execute", trace,
                          static_cast<uint64_t>(pick.width));
    auto eval = cq::EvaluateWithDecomposition(query, db, pick.decomposition);
    if (!eval.ok()) return eval.status();
    if (!eval->satisfiable) {
      answer.counted = count_solutions;
      answer.execute_seconds = timer.ElapsedSeconds();
      metrics.GetHistogram("htd_query_seconds", "stage=\"execute\"")
          .Observe(answer.execute_seconds);
      return finish(QueryOutcome::kUnsatisfiable);
    }
    answer.witness = eval->witness;
    // Verify the witness against every atom before reporting it: a bad
    // decomposition (or executor bug) must surface as an error, never as a
    // wrong answer.
    for (const cq::Atom& atom : query.atoms) {
      cq::Tuple expected;
      expected.reserve(atom.variables.size());
      for (const std::string& var : atom.variables) {
        auto it = answer.witness.find(var);
        if (it == answer.witness.end()) {
          return util::Status::Internal("witness misses variable '" + var +
                                        "'");
        }
        expected.push_back(it->second);
      }
      const cq::Relation* relation = db.Find(atom.relation);
      if (std::find(relation->tuples.begin(), relation->tuples.end(),
                    expected) == relation->tuples.end()) {
        return util::Status::Internal("witness violates atom over '" +
                                      atom.relation + "'");
      }
    }
    if (count_solutions) {
      auto count = cq::CountSolutions(query, db, pick.decomposition);
      if (!count.ok()) return count.status();
      answer.count = *count;
      answer.counted = true;
    }
    answer.execute_seconds = timer.ElapsedSeconds();
    metrics.GetHistogram("htd_query_seconds", "stage=\"execute\"")
        .Observe(answer.execute_seconds);
  }
  return finish(QueryOutcome::kSatisfiable);
}

}  // namespace htd::qa
