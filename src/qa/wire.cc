#include "qa/wire.h"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace htd::qa {
namespace {

constexpr std::string_view kMagic = "HTDQUERY1";

// The distinct relation symbols of `query` in first-appearance order, each
// with its arity. Fails when one symbol is used at two arities — the wire
// form stores one REL block per symbol, so a mixed-arity query has no
// canonical document (and no well-formed database either).
util::StatusOr<std::vector<std::pair<std::string, int>>> DistinctRelations(
    const cq::Query& query) {
  if (query.atoms.empty()) {
    return util::Status::InvalidArgument("query has no atoms");
  }
  std::vector<std::pair<std::string, int>> order;
  std::unordered_map<std::string, int> arity;
  for (const cq::Atom& atom : query.atoms) {
    int a = static_cast<int>(atom.variables.size());
    auto [it, inserted] = arity.emplace(atom.relation, a);
    if (inserted) {
      order.emplace_back(atom.relation, a);
    } else if (it->second != a) {
      return util::Status::InvalidArgument(
          "relation '" + atom.relation + "' used at arities " +
          std::to_string(it->second) + " and " + std::to_string(a));
    }
  }
  return order;
}

std::string RenderTuple(const cq::Tuple& tuple) {
  std::string line;
  for (size_t i = 0; i < tuple.size(); ++i) {
    if (i > 0) line += ' ';
    line += std::to_string(tuple[i]);
  }
  return line;
}

// Canonical base-10 int64: optional '-', no leading zeros, no "-0", in range.
bool ParseCanonicalInt64(std::string_view text, int64_t* out) {
  bool negative = false;
  if (!text.empty() && text[0] == '-') {
    negative = true;
    text.remove_prefix(1);
  }
  if (text.empty() || text.size() > 19) return false;
  if (text[0] == '0' && (text.size() > 1 || negative)) return false;
  uint64_t magnitude = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    magnitude = magnitude * 10 + static_cast<uint64_t>(c - '0');
  }
  constexpr uint64_t kMax = static_cast<uint64_t>(
      std::numeric_limits<int64_t>::max());
  if (negative) {
    if (magnitude > kMax + 1) return false;
    *out = magnitude == kMax + 1
               ? std::numeric_limits<int64_t>::min()
               : -static_cast<int64_t>(magnitude);
  } else {
    if (magnitude > kMax) return false;
    *out = static_cast<int64_t>(magnitude);
  }
  return true;
}

// Canonical non-negative count bounded far below any legitimate document.
bool ParseCanonicalCount(std::string_view text, uint64_t* out) {
  if (text.empty() || text.size() > 9) return false;
  if (text[0] == '0' && text.size() > 1) return false;
  uint64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  *out = value;
  return true;
}

// Splits `text` into '\n'-terminated lines. Every line — including the last
// one — must end with '\n'; a missing final newline is a parse error.
bool SplitLines(const std::string& text, std::vector<std::string_view>* lines) {
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) return false;
    lines->push_back(std::string_view(text).substr(start, end - start));
    start = end + 1;
  }
  return true;
}

// Splits a line on single spaces; empty fields (leading / trailing /
// doubled separators) are rejected by returning an empty vector.
std::vector<std::string_view> SplitFields(std::string_view line) {
  std::vector<std::string_view> fields;
  size_t start = 0;
  while (true) {
    size_t end = line.find(' ', start);
    std::string_view field = end == std::string_view::npos
                                 ? line.substr(start)
                                 : line.substr(start, end - start);
    if (field.empty()) return {};
    fields.push_back(field);
    if (end == std::string_view::npos) return fields;
    start = end + 1;
  }
}

util::Status Malformed(size_t line_number, const std::string& what) {
  return util::Status::InvalidArgument("HTDQUERY1 line " +
                                       std::to_string(line_number + 1) + ": " +
                                       what);
}

}  // namespace

std::string RenderQueryText(const cq::Query& query) {
  std::string text;
  for (size_t i = 0; i < query.atoms.size(); ++i) {
    if (i > 0) text += ", ";
    text += query.atoms[i].relation;
    text += '(';
    for (size_t j = 0; j < query.atoms[i].variables.size(); ++j) {
      if (j > 0) text += ',';
      text += query.atoms[i].variables[j];
    }
    text += ')';
  }
  text += '.';
  return text;
}

util::StatusOr<std::string> RenderQueryRequest(const cq::Query& query,
                                               const cq::Database& db) {
  auto relations = DistinctRelations(query);
  if (!relations.ok()) return relations.status();

  std::string out;
  out += kMagic;
  out += ' ';
  out += std::to_string(relations->size());
  out += '\n';
  out += "QUERY ";
  out += RenderQueryText(query);
  out += '\n';
  for (const auto& [name, arity] : *relations) {
    const cq::Relation* relation = db.Find(name);
    if (relation == nullptr) {
      return util::Status::InvalidArgument("relation '" + name +
                                           "' not in database");
    }
    if (relation->arity != arity) {
      return util::Status::InvalidArgument(
          "relation '" + name + "' stored at arity " +
          std::to_string(relation->arity) + " but queried at arity " +
          std::to_string(arity));
    }
    std::vector<cq::Tuple> tuples = relation->tuples;
    for (const cq::Tuple& t : tuples) {
      if (static_cast<int>(t.size()) != arity) {
        return util::Status::InvalidArgument("relation '" + name +
                                             "' holds a tuple of wrong arity");
      }
    }
    std::sort(tuples.begin(), tuples.end());
    tuples.erase(std::unique(tuples.begin(), tuples.end()), tuples.end());
    out += "REL ";
    out += name;
    out += ' ';
    out += std::to_string(arity);
    out += ' ';
    out += std::to_string(tuples.size());
    out += '\n';
    for (const cq::Tuple& t : tuples) {
      out += RenderTuple(t);
      out += '\n';
    }
  }
  out += "END\n";
  return out;
}

util::StatusOr<QueryRequest> ParseQueryRequest(const std::string& text) {
  std::vector<std::string_view> lines;
  if (!SplitLines(text, &lines)) {
    return util::Status::InvalidArgument(
        "HTDQUERY1: document does not end in a newline");
  }
  if (lines.size() < 3) {
    return util::Status::InvalidArgument("HTDQUERY1: truncated document");
  }

  size_t at = 0;
  // Header: "HTDQUERY1 <num_relations>".
  {
    std::vector<std::string_view> fields = SplitFields(lines[at]);
    if (fields.size() != 2 || fields[0] != kMagic) {
      return Malformed(at, "expected 'HTDQUERY1 <num_relations>'");
    }
    uint64_t declared = 0;
    if (!ParseCanonicalCount(fields[1], &declared) || declared == 0) {
      return Malformed(at, "bad relation count");
    }
    // Cross-checked against the query's symbols below.
    if (declared > lines.size()) {
      return Malformed(at, "relation count exceeds document");
    }
  }
  uint64_t declared_relations = 0;
  ParseCanonicalCount(SplitFields(lines[0])[1], &declared_relations);
  ++at;

  // "QUERY <canonical text>".
  QueryRequest request;
  {
    std::string_view line = lines[at];
    if (line.substr(0, 6) != "QUERY ") {
      return Malformed(at, "expected 'QUERY <conjunctive query>'");
    }
    std::string query_text(line.substr(6));
    auto parsed = cq::ParseQuery(query_text);
    if (!parsed.ok()) {
      return Malformed(at, "unparseable query: " + parsed.status().message());
    }
    if (RenderQueryText(*parsed) != query_text) {
      return Malformed(at, "query text is not in canonical form");
    }
    request.query = std::move(*parsed);
  }
  ++at;

  auto relations = DistinctRelations(request.query);
  if (!relations.ok()) return relations.status();
  if (relations->size() != declared_relations) {
    return Malformed(0, "relation count does not match the query (" +
                            std::to_string(relations->size()) + " expected)");
  }

  // One REL block per distinct symbol, in first-appearance order.
  for (const auto& [name, arity] : *relations) {
    if (at >= lines.size()) {
      return util::Status::InvalidArgument(
          "HTDQUERY1: truncated before relation '" + name + "'");
    }
    std::vector<std::string_view> fields = SplitFields(lines[at]);
    if (fields.size() != 4 || fields[0] != "REL") {
      return Malformed(at, "expected 'REL <name> <arity> <num_tuples>'");
    }
    if (fields[1] != name) {
      return Malformed(at, "relation '" + std::string(fields[1]) +
                               "' out of order (expected '" + name + "')");
    }
    uint64_t declared_arity = 0, declared_tuples = 0;
    if (!ParseCanonicalCount(fields[2], &declared_arity) ||
        declared_arity != static_cast<uint64_t>(arity)) {
      return Malformed(at, "arity does not match the query");
    }
    if (!ParseCanonicalCount(fields[3], &declared_tuples)) {
      return Malformed(at, "bad tuple count");
    }
    ++at;

    cq::Relation relation;
    relation.name = name;
    relation.arity = arity;
    relation.tuples.reserve(
        std::min<uint64_t>(declared_tuples, lines.size() - at));
    for (uint64_t t = 0; t < declared_tuples; ++t, ++at) {
      if (at >= lines.size()) {
        return util::Status::InvalidArgument(
            "HTDQUERY1: truncated inside relation '" + name + "'");
      }
      std::vector<std::string_view> values = SplitFields(lines[at]);
      if (values.size() != static_cast<size_t>(arity)) {
        return Malformed(at, "tuple of wrong arity in relation '" + name + "'");
      }
      cq::Tuple tuple(arity);
      for (int i = 0; i < arity; ++i) {
        if (!ParseCanonicalInt64(values[i], &tuple[i])) {
          return Malformed(at, "non-canonical integer '" +
                                   std::string(values[i]) + "'");
        }
      }
      if (!relation.tuples.empty() && !(relation.tuples.back() < tuple)) {
        return Malformed(at, "tuples of relation '" + name +
                                 "' not strictly ascending");
      }
      relation.tuples.push_back(std::move(tuple));
    }
    request.db.AddRelation(std::move(relation));
  }

  if (at >= lines.size() || lines[at] != "END") {
    return at < lines.size() ? Malformed(at, "expected 'END'")
                             : util::Status::InvalidArgument(
                                   "HTDQUERY1: truncated before END");
  }
  ++at;
  if (at != lines.size()) {
    return Malformed(at, "trailing bytes after END");
  }
  return request;
}

}  // namespace htd::qa
