#include "qa/portfolio.h"

#include <algorithm>
#include <cmath>

#include "fractional/cover.h"
#include "util/logging.h"

namespace htd::qa {
namespace {

uint64_t Mix(uint64_t h, uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  return h * 0xff51afd7ed558ccdull;
}

uint64_t ShapeDigest(const Decomposition& decomp) {
  uint64_t h = 0x5851f42d4c957f2dull;
  h = Mix(h, static_cast<uint64_t>(decomp.num_nodes()));
  for (int u = 0; u < decomp.num_nodes(); ++u) {
    const DecompNode& node = decomp.node(u);
    h = Mix(h, static_cast<uint64_t>(node.parent) + 1);
    for (int e : node.lambda) h = Mix(h, 0x10000ull + static_cast<uint64_t>(e));
    node.chi.ForEach(
        [&](int v) { h = Mix(h, 0x20000ull + static_cast<uint64_t>(v)); });
  }
  return h;
}

// (fractional width, width) — the cardinality-independent quality order used
// both for capacity eviction and as the PickBest tie-break.
bool QualityBetter(const double fw_a, const int w_a, const double fw_b,
                   const int w_b) {
  if (fw_a != fw_b) return fw_a < fw_b;
  return w_a < w_b;
}

}  // namespace

uint64_t LabelledGraphDigest(const Hypergraph& graph) {
  uint64_t h = 0x243f6a8885a308d3ull;
  h = Mix(h, static_cast<uint64_t>(graph.num_vertices()));
  h = Mix(h, static_cast<uint64_t>(graph.num_edges()));
  for (int e = 0; e < graph.num_edges(); ++e) {
    h = Mix(h, 0x40000ull + static_cast<uint64_t>(e));
    for (int v : graph.edge_vertex_list(e)) {
      h = Mix(h, static_cast<uint64_t>(v));
    }
  }
  return h;
}

DecompositionPortfolio::DecompositionPortfolio(PortfolioOptions options)
    : options_(options) {
  HTD_CHECK_GE(options_.capacity_per_key, 1);
  HTD_CHECK_GE(options_.max_keys, size_t{1});
}

bool DecompositionPortfolio::Insert(const service::Fingerprint& fingerprint,
                                    const Hypergraph& graph,
                                    const Decomposition& decomposition) {
  Candidate candidate;
  candidate.decomposition = decomposition;
  candidate.width = decomposition.Width();
  candidate.shape_digest = ShapeDigest(decomposition);
  candidate.node_covers.reserve(decomposition.num_nodes());
  double fractional_width = 0.0;
  for (int u = 0; u < decomposition.num_nodes(); ++u) {
    fractional::FractionalCover cover =
        fractional::FractionalEdgeCover(graph, decomposition.node(u).chi);
    if (cover.weight < 0) {
      // χ(u) holds a vertex outside every edge — not a decomposition of
      // `graph`; refuse rather than store an inexecutable candidate.
      return false;
    }
    fractional_width = std::max(fractional_width, cover.weight);
    candidate.node_covers.push_back(std::move(cover.edge_weights));
  }
  candidate.fractional_width = fractional_width;

  Key key{fingerprint, LabelledGraphDigest(graph)};
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    if (entries_.size() >= options_.max_keys) {
      auto oldest = entries_.begin();
      for (auto e = entries_.begin(); e != entries_.end(); ++e) {
        if (e->second.inserted_at < oldest->second.inserted_at) oldest = e;
      }
      entries_.erase(oldest);
    }
    it = entries_.emplace(key, Entry{{}, ++clock_}).first;
  }
  Entry& entry = it->second;
  for (const Candidate& existing : entry.candidates) {
    if (existing.shape_digest == candidate.shape_digest) return false;
  }
  if (entry.candidates.size() <
      static_cast<size_t>(options_.capacity_per_key)) {
    entry.candidates.push_back(std::move(candidate));
    return true;
  }
  // Full: replace the quality-worst candidate if the newcomer beats it.
  // Slot 0 (first-found, the baseline) is never evicted.
  size_t worst = 1;
  for (size_t i = 2; i < entry.candidates.size(); ++i) {
    if (QualityBetter(entry.candidates[worst].fractional_width,
                      entry.candidates[worst].width,
                      entry.candidates[i].fractional_width,
                      entry.candidates[i].width)) {
      worst = i;
    }
  }
  if (worst < entry.candidates.size() &&
      QualityBetter(candidate.fractional_width, candidate.width,
                    entry.candidates[worst].fractional_width,
                    entry.candidates[worst].width)) {
    entry.candidates[worst] = std::move(candidate);
    return true;
  }
  return false;
}

double DecompositionPortfolio::EstimateCost(
    const Candidate& candidate,
    const std::vector<uint64_t>& edge_cardinalities) {
  // AGM bound per node in log space: Σ_e x_e · ln(max(1, N_e)); the node
  // costs are summed in linear space (total intermediate tuples built).
  double total = 0.0;
  for (const auto& cover : candidate.node_covers) {
    double log_bound = 0.0;
    for (const auto& [edge, weight] : cover) {
      double n = 1.0;
      if (edge >= 0 && static_cast<size_t>(edge) < edge_cardinalities.size()) {
        n = std::max<double>(1.0, static_cast<double>(edge_cardinalities[edge]));
      }
      log_bound += weight * std::log(n);
    }
    total += std::exp(log_bound);
  }
  return total;
}

PortfolioPick DecompositionPortfolio::MakePick(
    const Candidate& candidate, int index, int num_candidates,
    const std::vector<uint64_t>& cardinalities) {
  PortfolioPick pick;
  pick.decomposition = candidate.decomposition;
  pick.width = candidate.width;
  pick.fractional_width = candidate.fractional_width;
  pick.estimated_cost = EstimateCost(candidate, cardinalities);
  pick.candidate_index = index;
  pick.num_candidates = num_candidates;
  return pick;
}

std::optional<PortfolioPick> DecompositionPortfolio::PickBest(
    const service::Fingerprint& fingerprint, const Hypergraph& graph,
    const std::vector<uint64_t>& edge_cardinalities) const {
  Key key{fingerprint, LabelledGraphDigest(graph)};
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(key);
  if (it == entries_.end() || it->second.candidates.empty()) {
    return std::nullopt;
  }
  const std::vector<Candidate>& candidates = it->second.candidates;
  int best = 0;
  double best_cost = EstimateCost(candidates[0], edge_cardinalities);
  for (size_t i = 1; i < candidates.size(); ++i) {
    double cost = EstimateCost(candidates[i], edge_cardinalities);
    bool better = cost < best_cost ||
                  (cost == best_cost &&
                   QualityBetter(candidates[i].fractional_width,
                                 candidates[i].width,
                                 candidates[best].fractional_width,
                                 candidates[best].width));
    if (better) {
      best = static_cast<int>(i);
      best_cost = cost;
    }
  }
  return MakePick(candidates[best], best, static_cast<int>(candidates.size()),
                  edge_cardinalities);
}

std::optional<PortfolioPick> DecompositionPortfolio::PickFirst(
    const service::Fingerprint& fingerprint, const Hypergraph& graph,
    const std::vector<uint64_t>& edge_cardinalities) const {
  Key key{fingerprint, LabelledGraphDigest(graph)};
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(key);
  if (it == entries_.end() || it->second.candidates.empty()) {
    return std::nullopt;
  }
  return MakePick(it->second.candidates[0], 0,
                  static_cast<int>(it->second.candidates.size()),
                  edge_cardinalities);
}

std::vector<Decomposition> DecompositionPortfolio::Candidates(
    const service::Fingerprint& fingerprint, const Hypergraph& graph) const {
  Key key{fingerprint, LabelledGraphDigest(graph)};
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Decomposition> out;
  auto it = entries_.find(key);
  if (it == entries_.end()) return out;
  for (const Candidate& candidate : it->second.candidates) {
    out.push_back(candidate.decomposition);
  }
  return out;
}

int DecompositionPortfolio::CandidateCount(
    const service::Fingerprint& fingerprint, const Hypergraph& graph) const {
  Key key{fingerprint, LabelledGraphDigest(graph)};
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(key);
  return it == entries_.end() ? 0
                              : static_cast<int>(it->second.candidates.size());
}

size_t DecompositionPortfolio::num_keys() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

}  // namespace htd::qa
