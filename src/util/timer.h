// Wall-clock timer for solver statistics and benchmark harnesses.
#pragma once

#include <chrono>

namespace htd::util {

class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}

  void Restart() { start_ = std::chrono::steady_clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace htd::util
