// Per-thread ring-buffer span recorder with a process-wide registry.
//
// Every thread that records gets its own fixed-slot ring (no shared write
// path), so recording never contends with other recorders. Each slot is a
// seqlock: all fields are relaxed atomics guarded by a per-slot sequence
// word, so a concurrent Snapshot() either reads a consistent span or
// detects the tear and skips the slot. Rings are registered with the
// singleton TraceRegistry on first use; when a thread exits its ring is
// flushed into a bounded retired store so short-lived worker threads (the
// parallel separator search spawns them per call) don't lose their spans.
//
// Span identity: `id` is unique per process (seeded from the steady clock
// so ids adopted from another process — the router propagating a request
// id to a backend — are unlikely to collide with local ones). `root` ties
// every span of one request together; root spans have parent == 0 and
// root == id. Timestamps are steady-clock nanoseconds since registry
// construction; duration is nanoseconds.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <mutex>
#include <string>
#include <vector>

namespace htd::util {

/// A completed span as read out of a ring. 16-byte name, one u64 tag
/// (recursion depth, shard index, thread count — whatever the site wants).
struct TraceSpan {
  uint64_t id = 0;
  uint64_t parent = 0;  ///< 0 = root span
  uint64_t root = 0;    ///< id of the root span of this request
  uint64_t start_ns = 0;
  uint64_t duration_ns = 0;
  uint64_t tag = 0;
  char name[16] = {0};

  std::string Name() const;
};

/// Fixed-slot single-writer ring. Only the owning thread pushes; any
/// thread may read via ReadInto (seqlock per slot).
class TraceRing {
 public:
  static constexpr size_t kCapacity = 256;

  void Push(const TraceSpan& span);
  /// Appends every consistent, completed slot to `out`.
  void ReadInto(std::vector<TraceSpan>* out) const;
  uint64_t pushed() const { return head_.load(std::memory_order_relaxed); }

 private:
  struct Slot {
    std::atomic<uint64_t> seq{0};  ///< odd = write in progress
    std::atomic<uint64_t> id{0};
    std::atomic<uint64_t> parent{0};
    std::atomic<uint64_t> root{0};
    std::atomic<uint64_t> start_ns{0};
    std::atomic<uint64_t> duration_ns{0};
    std::atomic<uint64_t> tag{0};
    std::atomic<uint64_t> name0{0};
    std::atomic<uint64_t> name1{0};
  };

  Slot slots_[kCapacity];
  std::atomic<uint64_t> head_{0};
};

/// Process-wide registry of live rings plus a bounded store of spans
/// flushed from exited threads.
class TraceRegistry {
 public:
  static TraceRegistry& Instance();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// Process-unique span id (never 0).
  uint64_t NextId();

  /// Steady-clock nanoseconds since registry construction.
  uint64_t NowNs() const;

  /// Records into the calling thread's ring (created and registered on
  /// first use). No-op when disabled.
  void Record(const TraceSpan& span);

  /// Consistent copies of every span currently held in live rings and the
  /// retired store. Order is unspecified.
  std::vector<TraceSpan> Snapshot() const;

  /// The most recent `n` completed root spans (parent == 0), newest
  /// first, each with the spans sharing its root id attached.
  struct RootTrace {
    TraceSpan root;
    std::vector<TraceSpan> spans;  ///< children, sorted by start_ns
  };
  std::vector<RootTrace> RecentRoots(size_t n) const;

  // Internal — called by the thread-local ring holder.
  void RegisterRing(TraceRing* ring);
  void RetireRing(TraceRing* ring);

 private:
  TraceRegistry();

  static constexpr size_t kRetiredCapacity = 4096;

  std::atomic<bool> enabled_{true};
  std::atomic<uint64_t> next_id_;

  mutable std::mutex mu_;
  std::vector<TraceRing*> rings_;
  std::vector<TraceSpan> retired_;  ///< ring: retired_pos_ wraps
  size_t retired_pos_ = 0;

  uint64_t epoch_ns_ = 0;
};

/// Explicit parentage for spans that continue a request on another thread
/// (scheduler flights, solver pool, parallel-search workers).
struct TraceParent {
  uint64_t parent = 0;
  uint64_t root = 0;
};

/// Adopt a pre-assigned id for a root span (a request id propagated from
/// the shard router, or freshly drawn from NextId by the server).
struct TraceRootId {
  uint64_t id = 0;
};

/// RAII span. The default constructor parents under the calling thread's
/// current scope (nesting), making this span current for its lifetime.
/// The TraceParent form parents explicitly (cross-thread continuation) and
/// is inert when the parent is all-zero — a zero TraceParent means "this
/// work belongs to no traced request", so library code can pass one
/// through unconditionally. When the registry is disabled at
/// construction, the scope is inert too.
class TraceScope {
 public:
  explicit TraceScope(const char* name, uint64_t tag = 0);
  TraceScope(const char* name, TraceParent parent, uint64_t tag = 0);
  TraceScope(const char* name, TraceRootId root, uint64_t tag = 0);
  ~TraceScope();

  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

  bool armed() const { return armed_; }
  uint64_t id() const { return id_; }
  uint64_t root() const { return root_; }
  /// Elapsed seconds since construction (0 when inert).
  double Seconds() const;
  void set_tag(uint64_t tag) { tag_ = tag; }

 private:
  void Begin(const char* name, uint64_t parent, uint64_t root, uint64_t id,
             uint64_t tag);

  bool armed_ = false;
  uint64_t id_ = 0;
  uint64_t parent_ = 0;
  uint64_t root_ = 0;
  uint64_t tag_ = 0;
  uint64_t start_ns_ = 0;
  uint64_t saved_current_ = 0;
  uint64_t saved_root_ = 0;
  char name_[16] = {0};
};

/// Records an already-measured span (used for retroactive stages such as
/// scheduler queue wait, where no scope was open at the start).
void RecordSpan(const char* name, uint64_t parent, uint64_t root,
                uint64_t start_ns, uint64_t duration_ns, uint64_t tag = 0);

/// The calling thread's current span context (for handing to a worker).
TraceParent CurrentTraceParent();

/// 16 lowercase hex digits.
std::string TraceIdHex(uint64_t id);
/// Parses exactly 16 hex digits; returns false (id untouched) otherwise.
bool ParseTraceId(const std::string& text, uint64_t* id);

}  // namespace htd::util
