#include "util/metrics.h"

#include <cmath>
#include <cstdio>

namespace htd::util {

void Histogram::Observe(double seconds) {
  int bucket = BucketIndex(seconds);
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  if (seconds > 0) {
    sum_ns_.fetch_add(static_cast<uint64_t>(seconds * 1e9),
                      std::memory_order_relaxed);
  }
}

int Histogram::BucketIndex(double seconds) {
  if (!(seconds > 0)) return 0;
  double us = seconds * 1e6;
  for (int i = 0; i < kFiniteBuckets; ++i) {
    if (us <= static_cast<double>(1ull << i)) return i;
  }
  return kFiniteBuckets;  // +Inf
}

double Histogram::BucketBound(int i) {
  return static_cast<double>(1ull << i) * 1e-6;
}

Counter& MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  if (Entry* e = Find(name, labels)) return *e->counter;
  counters_.push_back(std::make_unique<Counter>());
  auto entry = std::make_unique<Entry>();
  entry->name = name;
  entry->labels = labels;
  entry->type = "counter";
  entry->counter = counters_.back().get();
  entries_.push_back(std::move(entry));
  return *counters_.back();
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::string& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  if (Entry* e = Find(name, labels)) return *e->histogram;
  histograms_.push_back(std::make_unique<Histogram>());
  auto entry = std::make_unique<Entry>();
  entry->name = name;
  entry->labels = labels;
  entry->type = "histogram";
  entry->histogram = histograms_.back().get();
  entries_.push_back(std::move(entry));
  return *histograms_.back();
}

void MetricsRegistry::RegisterCallback(const std::string& name,
                                       const std::string& labels,
                                       const std::string& type,
                                       std::function<double()> callback) {
  std::lock_guard<std::mutex> lock(mu_);
  if (Entry* e = Find(name, labels)) {
    e->callback = std::move(callback);
    e->type = type;
    return;
  }
  auto entry = std::make_unique<Entry>();
  entry->name = name;
  entry->labels = labels;
  entry->type = type;
  entry->callback = std::move(callback);
  entries_.push_back(std::move(entry));
}

void MetricsRegistry::SetHelp(const std::string& name,
                              const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  help_[name] = help;
}

MetricsRegistry::Entry* MetricsRegistry::Find(const std::string& name,
                                              const std::string& labels) {
  for (auto& entry : entries_) {
    if (entry->name == name && entry->labels == labels) return entry.get();
  }
  return nullptr;
}

std::vector<MetricSample> MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MetricSample> out;
  out.reserve(entries_.size());
  for (const auto& entry : entries_) {
    if (entry->histogram != nullptr) continue;
    MetricSample sample;
    sample.name = entry->name;
    sample.labels = entry->labels;
    if (entry->counter != nullptr) {
      sample.value = static_cast<double>(entry->counter->Value());
    } else if (entry->callback) {
      sample.value = entry->callback();
    }
    out.push_back(std::move(sample));
  }
  return out;
}

std::string FormatMetricValue(double value) {
  if (std::isfinite(value) && value == std::floor(value) &&
      std::fabs(value) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(value));
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", value);
  return buf;
}

namespace {

std::string Braced(const std::string& labels) {
  if (labels.empty()) return "";
  return "{" + labels + "}";
}

std::string WithLe(const std::string& labels, const std::string& le) {
  if (labels.empty()) return "{le=\"" + le + "\"}";
  return "{" + labels + ",le=\"" + le + "\"}";
}

}  // namespace

std::string MetricsRegistry::RenderPrometheus() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  out.reserve(4096);
  std::map<std::string, bool> typed;
  for (const auto& entry : entries_) {
    if (!typed.count(entry->name)) {
      typed[entry->name] = true;
      auto help = help_.find(entry->name);
      if (help != help_.end()) {
        out += "# HELP " + entry->name + " " + help->second + "\n";
      }
      out += "# TYPE " + entry->name + " " + entry->type + "\n";
    }
    if (entry->histogram != nullptr) {
      const Histogram& h = *entry->histogram;
      uint64_t cumulative = 0;
      for (int i = 0; i < Histogram::kFiniteBuckets; ++i) {
        cumulative += h.BucketValue(i);
        char bound[32];
        std::snprintf(bound, sizeof(bound), "%g", Histogram::BucketBound(i));
        out += entry->name + "_bucket" + WithLe(entry->labels, bound) + " " +
               FormatMetricValue(static_cast<double>(cumulative)) + "\n";
      }
      cumulative += h.BucketValue(Histogram::kFiniteBuckets);
      out += entry->name + "_bucket" + WithLe(entry->labels, "+Inf") + " " +
             FormatMetricValue(static_cast<double>(cumulative)) + "\n";
      out += entry->name + "_sum" + Braced(entry->labels) + " " +
             FormatMetricValue(h.SumSeconds()) + "\n";
      out += entry->name + "_count" + Braced(entry->labels) + " " +
             FormatMetricValue(static_cast<double>(h.Count())) + "\n";
      continue;
    }
    double value = 0.0;
    if (entry->counter != nullptr) {
      value = static_cast<double>(entry->counter->Value());
    } else if (entry->callback) {
      value = entry->callback();
    }
    out += entry->name + Braced(entry->labels) + " " +
           FormatMetricValue(value) + "\n";
  }
  return out;
}

}  // namespace htd::util
