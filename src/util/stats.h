// Running statistics (count / mean / max / stdev) for benchmark tables.
//
// Table 1 of the paper reports avg, max and stdev of runtimes over *solved*
// instances only; RunningStats is the accumulator the harnesses use for that.
#pragma once

#include <string>

namespace htd::util {

class RunningStats {
 public:
  void Add(double x);

  long Count() const { return count_; }
  double Mean() const { return count_ == 0 ? 0.0 : sum_ / count_; }
  double Max() const { return count_ == 0 ? 0.0 : max_; }
  double Min() const { return count_ == 0 ? 0.0 : min_; }
  /// Population standard deviation (what the paper's stdev column reports).
  double StdDev() const;

 private:
  long count_ = 0;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
  double max_ = 0.0;
  double min_ = 0.0;
};

}  // namespace htd::util
