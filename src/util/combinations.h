// Enumeration of k-subsets for separator search.
//
// Separator candidates λ are subsets of an "allowed" edge list with
// 1 ≤ |λ| ≤ k. The search space is partitioned into chunks of the form
// (subset size, fixed first element); chunks are the unit of work handed to
// worker threads (log-k-decomp §D.1: the search space is divided uniformly
// over cores with no inter-thread communication).
//
// All enumerators yield index tuples in strictly increasing order, and the
// overall order is (size asc, lexicographic) — deterministic, so sequential
// and single-threaded-parallel runs explore candidates identically.
#pragma once

#include <cstdint>
#include <vector>

#include "util/logging.h"

namespace htd::util {

/// Number of s-subsets of an n-universe, saturating at int64 max / 4 to keep
/// arithmetic on chunk sizes overflow-free.
int64_t BinomialCapped(int n, int s);

/// Enumerates all subsets of {0..n-1} with min_size ≤ |S| ≤ max_size in
/// (size asc, lexicographic) order.
///
/// Usage:
///   SubsetEnumerator en(n, 1, k);
///   while (en.Next()) use(en.indices());
class SubsetEnumerator {
 public:
  SubsetEnumerator(int n, int min_size, int max_size);

  /// Advances to the next subset; returns false when exhausted.
  bool Next();

  const std::vector<int>& indices() const { return indices_; }
  int size() const { return static_cast<int>(indices_.size()); }

 private:
  bool StartSize(int s);

  int n_;
  int max_size_;
  int current_size_;
  bool started_ = false;
  std::vector<int> indices_;
};

/// Enumerates the s-subsets of {0..n-1} whose smallest element is `first`,
/// in lexicographic order. One FixedFirstEnumerator = one parallel work chunk.
class FixedFirstEnumerator {
 public:
  FixedFirstEnumerator(int n, int s, int first);

  bool Next();
  const std::vector<int>& indices() const { return indices_; }

 private:
  int n_;
  int s_;
  bool started_ = false;
  std::vector<int> indices_;
};

/// A unit of separator-search work: all subsets of size `size` starting at
/// element `first`.
struct SubsetChunk {
  int size;
  int first;
};

/// Builds the chunk list covering all subsets S with 1 ≤ |S| ≤ k of an
/// n-element universe, where additionally the first element must be < first_limit.
///
/// The first-element bound implements the "λ must contain at least one new
/// edge" restriction: if the allowed-edge list is ordered with the component's
/// own edges first (positions 0..first_limit-1), then a lexicographically
/// sorted subset contains a new edge iff its first element is < first_limit.
std::vector<SubsetChunk> MakeSubsetChunks(int n, int k, int first_limit);

}  // namespace htd::util
