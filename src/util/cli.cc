#include "util/cli.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <string>

namespace htd::util {

bool ParseIntFlag(std::string_view text, long min_value, long max_value,
                  long* out) {
  if (text.empty()) return false;
  // strtol skips leading whitespace; a flag value starting with space is
  // operator error, not a number.
  if (std::isspace(static_cast<unsigned char>(text.front()))) return false;
  std::string owned(text);
  errno = 0;
  char* end = nullptr;
  long value = std::strtol(owned.c_str(), &end, 10);
  if (end != owned.c_str() + owned.size()) return false;
  if (errno == ERANGE) return false;
  if (value < min_value || value > max_value) return false;
  *out = value;
  return true;
}

bool ParseDoubleFlag(std::string_view text, double min_value, double* out) {
  if (text.empty()) return false;
  if (std::isspace(static_cast<unsigned char>(text.front()))) return false;
  std::string owned(text);
  errno = 0;
  char* end = nullptr;
  double value = std::strtod(owned.c_str(), &end);
  if (end != owned.c_str() + owned.size()) return false;
  if (errno == ERANGE || !std::isfinite(value)) return false;
  if (value < min_value) return false;
  *out = value;
  return true;
}

}  // namespace htd::util
