#include "util/bitset.h"

#include <sstream>

namespace htd::util {

int DynamicBitset::Count() const {
  int count = 0;
  for (uint64_t w : words_) count += __builtin_popcountll(w);
  return count;
}

bool DynamicBitset::Any() const {
  for (uint64_t w : words_) {
    if (w != 0) return true;
  }
  return false;
}

bool DynamicBitset::IsSubsetOf(const DynamicBitset& other) const {
  HTD_DCHECK(num_bits_ == other.num_bits_);
  for (size_t i = 0; i < words_.size(); ++i) {
    if ((words_[i] & ~other.words_[i]) != 0) return false;
  }
  return true;
}

bool DynamicBitset::Intersects(const DynamicBitset& other) const {
  HTD_DCHECK(num_bits_ == other.num_bits_);
  for (size_t i = 0; i < words_.size(); ++i) {
    if ((words_[i] & other.words_[i]) != 0) return true;
  }
  return false;
}

DynamicBitset& DynamicBitset::InplaceOr(const DynamicBitset& other) {
  HTD_DCHECK(num_bits_ == other.num_bits_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
  return *this;
}

DynamicBitset& DynamicBitset::InplaceAnd(const DynamicBitset& other) {
  HTD_DCHECK(num_bits_ == other.num_bits_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
  return *this;
}

DynamicBitset& DynamicBitset::InplaceAndNot(const DynamicBitset& other) {
  HTD_DCHECK(num_bits_ == other.num_bits_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] &= ~other.words_[i];
  return *this;
}

bool DynamicBitset::operator<(const DynamicBitset& other) const {
  if (num_bits_ != other.num_bits_) return num_bits_ < other.num_bits_;
  return words_ < other.words_;
}

int DynamicBitset::FindFirst() const {
  for (size_t w = 0; w < words_.size(); ++w) {
    if (words_[w] != 0) return static_cast<int>(w * 64 + __builtin_ctzll(words_[w]));
  }
  return -1;
}

int DynamicBitset::FindNext(int i) const {
  ++i;
  if (i >= num_bits_) return -1;
  size_t w = i >> 6;
  uint64_t word = words_[w] >> (i & 63);
  if (word != 0) return i + __builtin_ctzll(word);
  for (++w; w < words_.size(); ++w) {
    if (words_[w] != 0) return static_cast<int>(w * 64 + __builtin_ctzll(words_[w]));
  }
  return -1;
}

std::vector<int> DynamicBitset::ToVector() const {
  std::vector<int> out;
  out.reserve(Count());
  ForEach([&](int i) { out.push_back(i); });
  return out;
}

size_t DynamicBitset::Hash() const {
  // FNV-1a over the words; adequate for hash-map keys in caches.
  size_t h = 1469598103934665603ull;
  for (uint64_t w : words_) {
    h ^= w;
    h *= 1099511628211ull;
  }
  return h ^ static_cast<size_t>(num_bits_);
}

std::string DynamicBitset::ToString() const {
  std::ostringstream out;
  out << "{";
  bool first = true;
  ForEach([&](int i) {
    if (!first) out << ", ";
    out << i;
    first = false;
  });
  out << "}";
  return out.str();
}

}  // namespace htd::util
