#include "util/combinations.h"

#include <limits>

namespace htd::util {

int64_t BinomialCapped(int n, int s) {
  if (s < 0 || s > n) return 0;
  if (s == 0 || s == n) return 1;
  const int64_t cap = std::numeric_limits<int64_t>::max() / 4;
  int64_t result = 1;
  s = std::min(s, n - s);
  for (int i = 1; i <= s; ++i) {
    // result * (n - s + i) / i is exact because result is always a binomial.
    result = result * (n - s + i) / i;
    if (result >= cap) return cap;
  }
  return result;
}

SubsetEnumerator::SubsetEnumerator(int n, int min_size, int max_size)
    : n_(n), max_size_(std::min(max_size, n)), current_size_(min_size) {
  HTD_CHECK_GE(min_size, 0);
  HTD_CHECK_LE(min_size, max_size);
}

bool SubsetEnumerator::StartSize(int s) {
  if (s > max_size_ || s > n_) return false;
  indices_.resize(s);
  for (int i = 0; i < s; ++i) indices_[i] = i;
  current_size_ = s;
  return true;
}

bool SubsetEnumerator::Next() {
  if (!started_) {
    started_ = true;
    int s = current_size_;
    while (s <= max_size_) {
      if (StartSize(s)) return true;
      ++s;
    }
    return false;
  }
  int s = current_size_;
  // Standard lexicographic successor.
  int i = s - 1;
  while (i >= 0 && indices_[i] == n_ - s + i) --i;
  if (i < 0) {
    return StartSize(s + 1);
  }
  ++indices_[i];
  for (int j = i + 1; j < s; ++j) indices_[j] = indices_[j - 1] + 1;
  return true;
}

FixedFirstEnumerator::FixedFirstEnumerator(int n, int s, int first) : n_(n), s_(s) {
  HTD_CHECK_GE(s, 1);
  indices_.resize(s);
  indices_[0] = first;
}

bool FixedFirstEnumerator::Next() {
  int s = s_;
  if (!started_) {
    started_ = true;
    if (indices_[0] + s > n_) return false;
    for (int i = 1; i < s; ++i) indices_[i] = indices_[0] + i;
    return true;
  }
  // Lexicographic successor with indices_[0] pinned.
  int i = s - 1;
  while (i >= 1 && indices_[i] == n_ - s + i) --i;
  if (i < 1) return false;
  ++indices_[i];
  for (int j = i + 1; j < s; ++j) indices_[j] = indices_[j - 1] + 1;
  return true;
}

std::vector<SubsetChunk> MakeSubsetChunks(int n, int k, int first_limit) {
  std::vector<SubsetChunk> chunks;
  first_limit = std::min(first_limit, n);
  for (int s = 1; s <= std::min(k, n); ++s) {
    for (int first = 0; first < first_limit && first + s <= n; ++first) {
      chunks.push_back({s, first});
    }
  }
  return chunks;
}

}  // namespace htd::util
