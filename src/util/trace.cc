#include "util/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

namespace htd::util {
namespace {

uint64_t SteadyNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void PackName(const char* name, uint64_t* n0, uint64_t* n1) {
  char buf[16] = {0};
  if (name != nullptr) {
    size_t i = 0;
    for (; i < sizeof(buf) - 1 && name[i] != '\0'; ++i) buf[i] = name[i];
  }
  std::memcpy(n0, buf, 8);
  std::memcpy(n1, buf + 8, 8);
}

// Thread-local ring holder: registers on first use, flushes the ring into
// the registry's retired store when the thread exits.
struct RingHolder {
  TraceRing ring;
  RingHolder() { TraceRegistry::Instance().RegisterRing(&ring); }
  ~RingHolder() { TraceRegistry::Instance().RetireRing(&ring); }
};

TraceRing& ThreadRing() {
  static thread_local RingHolder holder;
  return holder.ring;
}

// Current span context for same-thread nesting.
struct ThreadContext {
  uint64_t current = 0;
  uint64_t root = 0;
};

ThreadContext& Context() {
  static thread_local ThreadContext ctx;
  return ctx;
}

}  // namespace

std::string TraceSpan::Name() const {
  size_t len = 0;
  while (len < sizeof(name) && name[len] != '\0') ++len;
  return std::string(name, len);
}

void TraceRing::Push(const TraceSpan& span) {
  uint64_t h = head_.load(std::memory_order_relaxed);
  Slot& slot = slots_[h % kCapacity];
  // Seqlock write: odd sequence marks the slot in progress; the release
  // fence orders the odd store before the field stores for any reader
  // that observes one of them, and the final release store publishes the
  // completed generation.
  slot.seq.store(2 * h + 1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  uint64_t n0 = 0;
  uint64_t n1 = 0;
  PackName(span.name, &n0, &n1);
  slot.id.store(span.id, std::memory_order_relaxed);
  slot.parent.store(span.parent, std::memory_order_relaxed);
  slot.root.store(span.root, std::memory_order_relaxed);
  slot.start_ns.store(span.start_ns, std::memory_order_relaxed);
  slot.duration_ns.store(span.duration_ns, std::memory_order_relaxed);
  slot.tag.store(span.tag, std::memory_order_relaxed);
  slot.name0.store(n0, std::memory_order_relaxed);
  slot.name1.store(n1, std::memory_order_relaxed);
  slot.seq.store(2 * h + 2, std::memory_order_release);
  head_.store(h + 1, std::memory_order_release);
}

void TraceRing::ReadInto(std::vector<TraceSpan>* out) const {
  for (const Slot& slot : slots_) {
    uint64_t s1 = slot.seq.load(std::memory_order_acquire);
    if (s1 == 0 || (s1 & 1) != 0) continue;  // empty or mid-write
    TraceSpan span;
    span.id = slot.id.load(std::memory_order_relaxed);
    span.parent = slot.parent.load(std::memory_order_relaxed);
    span.root = slot.root.load(std::memory_order_relaxed);
    span.start_ns = slot.start_ns.load(std::memory_order_relaxed);
    span.duration_ns = slot.duration_ns.load(std::memory_order_relaxed);
    span.tag = slot.tag.load(std::memory_order_relaxed);
    uint64_t n0 = slot.name0.load(std::memory_order_relaxed);
    uint64_t n1 = slot.name1.load(std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_acquire);
    uint64_t s2 = slot.seq.load(std::memory_order_relaxed);
    if (s1 != s2) continue;  // torn by a concurrent push — skip
    std::memcpy(span.name, &n0, 8);
    std::memcpy(span.name + 8, &n1, 8);
    out->push_back(span);
  }
}

TraceRegistry& TraceRegistry::Instance() {
  static TraceRegistry* registry = new TraceRegistry();
  return *registry;
}

TraceRegistry::TraceRegistry() : epoch_ns_(SteadyNowNs()) {
  // Seed ids off the clock so ids minted by two fleet processes (router
  // and backend) almost never collide when one adopts the other's.
  next_id_.store((epoch_ns_ << 16) | 1, std::memory_order_relaxed);
  retired_.reserve(kRetiredCapacity);
}

uint64_t TraceRegistry::NextId() {
  uint64_t id = next_id_.fetch_add(1, std::memory_order_relaxed);
  return id == 0 ? NextId() : id;
}

uint64_t TraceRegistry::NowNs() const { return SteadyNowNs() - epoch_ns_; }

void TraceRegistry::Record(const TraceSpan& span) {
  if (!enabled()) return;
  ThreadRing().Push(span);
}

void TraceRegistry::RegisterRing(TraceRing* ring) {
  std::lock_guard<std::mutex> lock(mu_);
  rings_.push_back(ring);
}

void TraceRegistry::RetireRing(TraceRing* ring) {
  std::vector<TraceSpan> spans;
  ring->ReadInto(&spans);
  std::lock_guard<std::mutex> lock(mu_);
  rings_.erase(std::remove(rings_.begin(), rings_.end(), ring), rings_.end());
  for (const TraceSpan& span : spans) {
    if (retired_.size() < kRetiredCapacity) {
      retired_.push_back(span);
    } else {
      retired_[retired_pos_ % kRetiredCapacity] = span;
    }
    ++retired_pos_;
  }
}

std::vector<TraceSpan> TraceRegistry::Snapshot() const {
  std::vector<TraceSpan> out;
  std::lock_guard<std::mutex> lock(mu_);
  out.reserve(retired_.size() + rings_.size() * TraceRing::kCapacity / 4);
  out.insert(out.end(), retired_.begin(), retired_.end());
  for (const TraceRing* ring : rings_) ring->ReadInto(&out);
  return out;
}

std::vector<TraceRegistry::RootTrace> TraceRegistry::RecentRoots(
    size_t n) const {
  std::vector<TraceSpan> all = Snapshot();
  std::vector<const TraceSpan*> roots;
  for (const TraceSpan& span : all) {
    if (span.parent == 0 && span.id != 0) roots.push_back(&span);
  }
  std::sort(roots.begin(), roots.end(),
            [](const TraceSpan* a, const TraceSpan* b) {
              return a->start_ns + a->duration_ns >
                     b->start_ns + b->duration_ns;
            });
  if (roots.size() > n) roots.resize(n);
  std::vector<RootTrace> out;
  out.reserve(roots.size());
  for (const TraceSpan* root : roots) {
    RootTrace trace;
    trace.root = *root;
    for (const TraceSpan& span : all) {
      if (span.root == root->id && span.id != root->id) {
        trace.spans.push_back(span);
      }
    }
    std::sort(trace.spans.begin(), trace.spans.end(),
              [](const TraceSpan& a, const TraceSpan& b) {
                return a.start_ns < b.start_ns;
              });
    out.push_back(std::move(trace));
  }
  return out;
}

void TraceScope::Begin(const char* name, uint64_t parent, uint64_t root,
                       uint64_t id, uint64_t tag) {
  TraceRegistry& reg = TraceRegistry::Instance();
  if (!reg.enabled()) return;
  armed_ = true;
  id_ = id != 0 ? id : reg.NextId();
  parent_ = parent;
  root_ = root != 0 ? root : id_;
  tag_ = tag;
  start_ns_ = reg.NowNs();
  size_t i = 0;
  for (; i < sizeof(name_) - 1 && name != nullptr && name[i] != '\0'; ++i) {
    name_[i] = name[i];
  }
  ThreadContext& ctx = Context();
  saved_current_ = ctx.current;
  saved_root_ = ctx.root;
  ctx.current = id_;
  ctx.root = root_;
}

TraceScope::TraceScope(const char* name, uint64_t tag) {
  ThreadContext& ctx = Context();
  Begin(name, ctx.current, ctx.root, 0, tag);
}

TraceScope::TraceScope(const char* name, TraceParent parent, uint64_t tag) {
  if (parent.parent == 0 && parent.root == 0) return;  // untraced request
  Begin(name, parent.parent, parent.root, 0, tag);
}

TraceScope::TraceScope(const char* name, TraceRootId root, uint64_t tag) {
  Begin(name, 0, root.id, root.id, tag);
}

TraceScope::~TraceScope() {
  if (!armed_) return;
  ThreadContext& ctx = Context();
  ctx.current = saved_current_;
  ctx.root = saved_root_;
  TraceRegistry& reg = TraceRegistry::Instance();
  TraceSpan span;
  span.id = id_;
  span.parent = parent_;
  span.root = root_;
  span.start_ns = start_ns_;
  span.duration_ns = reg.NowNs() - start_ns_;
  span.tag = tag_;
  std::memcpy(span.name, name_, sizeof(span.name));
  reg.Record(span);
}

double TraceScope::Seconds() const {
  if (!armed_) return 0.0;
  return static_cast<double>(TraceRegistry::Instance().NowNs() - start_ns_) *
         1e-9;
}

void RecordSpan(const char* name, uint64_t parent, uint64_t root,
                uint64_t start_ns, uint64_t duration_ns, uint64_t tag) {
  TraceRegistry& reg = TraceRegistry::Instance();
  if (!reg.enabled()) return;
  TraceSpan span;
  span.id = reg.NextId();
  span.parent = parent;
  span.root = root;
  span.start_ns = start_ns;
  span.duration_ns = duration_ns;
  span.tag = tag;
  size_t i = 0;
  for (; i < sizeof(span.name) - 1 && name != nullptr && name[i] != '\0';
       ++i) {
    span.name[i] = name[i];
  }
  reg.Record(span);
}

TraceParent CurrentTraceParent() {
  ThreadContext& ctx = Context();
  return TraceParent{ctx.current, ctx.root};
}

std::string TraceIdHex(uint64_t id) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(id));
  return std::string(buf, 16);
}

bool ParseTraceId(const std::string& text, uint64_t* id) {
  if (text.size() != 16) return false;
  uint64_t value = 0;
  for (char c : text) {
    uint64_t digit;
    if (c >= '0' && c <= '9') {
      digit = static_cast<uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<uint64_t>(c - 'a') + 10;
    } else if (c >= 'A' && c <= 'F') {
      digit = static_cast<uint64_t>(c - 'A') + 10;
    } else {
      return false;
    }
    value = (value << 4) | digit;
  }
  if (value == 0) return false;
  *id = value;
  return true;
}

}  // namespace htd::util
