// DynamicBitset: a fixed-universe bitset sized at runtime.
//
// The workhorse data structure of the library. Vertex sets (bags, separators,
// Conn interfaces) and edge sets (subhypergraphs, allowed-edge sets) are all
// DynamicBitsets over a hypergraph's vertex / edge universe. All binary
// operations require operands of identical universe size.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "util/logging.h"

namespace htd::util {

class DynamicBitset {
 public:
  DynamicBitset() = default;

  /// Creates an all-zero bitset over a universe of `num_bits` elements.
  explicit DynamicBitset(int num_bits)
      : num_bits_(num_bits), words_((num_bits + 63) / 64, 0) {
    HTD_CHECK_GE(num_bits, 0);
  }

  /// Convenience constructor from explicit indices (mostly for tests).
  static DynamicBitset FromIndices(int num_bits, std::initializer_list<int> bits) {
    DynamicBitset b(num_bits);
    for (int i : bits) b.Set(i);
    return b;
  }
  static DynamicBitset FromVector(int num_bits, const std::vector<int>& bits) {
    DynamicBitset b(num_bits);
    for (int i : bits) b.Set(i);
    return b;
  }

  int size_bits() const { return num_bits_; }

  /// Grows the universe to `new_num_bits` (which must be >= the current
  /// size); existing bits keep their positions.
  void GrowUniverse(int new_num_bits) {
    HTD_CHECK_GE(new_num_bits, num_bits_);
    num_bits_ = new_num_bits;
    words_.resize((new_num_bits + 63) / 64, 0);
  }

  bool Test(int i) const {
    HTD_DCHECK(i >= 0 && i < num_bits_) << i << " vs " << num_bits_;
    return (words_[i >> 6] >> (i & 63)) & 1;
  }
  void Set(int i) {
    HTD_DCHECK(i >= 0 && i < num_bits_) << i << " vs " << num_bits_;
    words_[i >> 6] |= uint64_t{1} << (i & 63);
  }
  void Reset(int i) {
    HTD_DCHECK(i >= 0 && i < num_bits_) << i << " vs " << num_bits_;
    words_[i >> 6] &= ~(uint64_t{1} << (i & 63));
  }
  void Clear() {
    for (auto& w : words_) w = 0;
  }
  void SetAll() {
    for (auto& w : words_) w = ~uint64_t{0};
    TrimTail();
  }

  int Count() const;
  bool Any() const;
  bool None() const { return !Any(); }

  /// True iff this ⊆ other.
  bool IsSubsetOf(const DynamicBitset& other) const;
  /// True iff this ∩ other ≠ ∅.
  bool Intersects(const DynamicBitset& other) const;

  DynamicBitset& InplaceOr(const DynamicBitset& other);
  DynamicBitset& InplaceAnd(const DynamicBitset& other);
  /// this := this \ other.
  DynamicBitset& InplaceAndNot(const DynamicBitset& other);

  friend DynamicBitset operator|(DynamicBitset a, const DynamicBitset& b) {
    return a.InplaceOr(b);
  }
  friend DynamicBitset operator&(DynamicBitset a, const DynamicBitset& b) {
    return a.InplaceAnd(b);
  }
  /// Set difference a \ b.
  friend DynamicBitset operator-(DynamicBitset a, const DynamicBitset& b) {
    return a.InplaceAndNot(b);
  }

  bool operator==(const DynamicBitset& other) const {
    return num_bits_ == other.num_bits_ && words_ == other.words_;
  }
  bool operator!=(const DynamicBitset& other) const { return !(*this == other); }
  /// Total order (lexicographic on words); usable as map key.
  bool operator<(const DynamicBitset& other) const;

  /// Index of the lowest set bit, or -1 if empty.
  int FindFirst() const;
  /// Index of the lowest set bit strictly greater than `i`, or -1.
  int FindNext(int i) const;

  /// Invokes f(int index) for each set bit in increasing order.
  template <typename F>
  void ForEach(F&& f) const {
    for (size_t w = 0; w < words_.size(); ++w) {
      uint64_t word = words_[w];
      while (word != 0) {
        int bit = __builtin_ctzll(word);
        f(static_cast<int>(w * 64 + bit));
        word &= word - 1;
      }
    }
  }

  std::vector<int> ToVector() const;

  size_t Hash() const;

  /// Renders as "{1, 4, 7}"; handy in test failure messages.
  std::string ToString() const;

 private:
  void TrimTail() {
    int tail = num_bits_ & 63;
    if (tail != 0 && !words_.empty()) {
      words_.back() &= (uint64_t{1} << tail) - 1;
    }
  }

  int num_bits_ = 0;
  std::vector<uint64_t> words_;
};

struct DynamicBitsetHash {
  size_t operator()(const DynamicBitset& b) const { return b.Hash(); }
};

}  // namespace htd::util
