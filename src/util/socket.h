// Thin TCP helpers over POSIX sockets: blocking primitives for the clients
// (net/http_client, tools/hdclient) and non-blocking primitives for the
// epoll readiness loop in net/server. Dependency-free by design — no
// external HTTP or event-loop library. Everything reports through
// util::Status / return codes: no exceptions, no global state (SIGPIPE is
// avoided per-send with MSG_NOSIGNAL).
#pragma once

#include <cstddef>
#include <string>
#include <string_view>

#include "util/status.h"

namespace htd::util {

/// Owning wrapper for a socket file descriptor (closes on destruction).
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  /// Releases ownership without closing.
  int Release();
  void Close();

 private:
  int fd_ = -1;
};

/// Binds and listens on host:port (port 0 = kernel-assigned ephemeral port).
/// SO_REUSEADDR is set so restarted servers rebind immediately.
StatusOr<Socket> ListenTcp(const std::string& host, int port, int backlog);

/// The local port a listening (or connected) socket is bound to.
int LocalPort(int fd);

/// Accepts one connection; blocks at most `timeout_ms` (so accept loops can
/// poll a shutdown flag). Returns an invalid Socket on timeout or on a
/// transient accept failure.
Socket AcceptWithTimeout(int listen_fd, int timeout_ms);

/// One poll-then-accept step for an accept loop that owns its own failure
/// policy (the epoll server's acceptor backs off on fd exhaustion instead
/// of spinning — the EMFILE guard lives in the LOOP, not here).
struct AcceptOutcome {
  Socket socket;       ///< valid iff a connection was accepted
  /// accept() itself failed after the listener polled readable — EMFILE /
  /// ENFILE / ENOBUFS and friends. The pending connection stays queued, so
  /// a bare retry would spin at 100% CPU; the caller must back off.
  bool soft_failure = false;
  int error = 0;       ///< errno of the soft failure
};
AcceptOutcome AcceptPolled(int listen_fd, int timeout_ms);

/// Connects to host:port; kUnavailable-flavoured Internal status on failure.
StatusOr<Socket> ConnectTcp(const std::string& host, int port,
                            double timeout_seconds);

/// Sets SO_RCVTIMEO so blocking reads fail with EAGAIN after the timeout.
void SetRecvTimeout(int fd, double seconds);

/// Sets SO_SNDTIMEO so blocking writes to a stalled peer eventually fail.
void SetSendTimeout(int fd, double seconds);

/// Writes the whole buffer (retrying partial sends); false on any error.
bool SendAll(int fd, std::string_view data);

/// One blocking read of up to `capacity` bytes into `buffer`. Returns the
/// byte count, 0 on orderly peer close, -1 on error, -2 on recv timeout.
/// On a non-blocking fd, -2 means "no bytes available right now" (EAGAIN),
/// which is exactly the readiness-loop contract.
long RecvSome(int fd, char* buffer, size_t capacity);

/// Puts the fd into non-blocking mode (O_NONBLOCK); false on fcntl failure.
bool SetNonBlocking(int fd);

/// One non-blocking send attempt. Returns the bytes written (possibly 0),
/// -1 on a hard error, -2 when the socket's send buffer is full (EAGAIN) —
/// the caller should arm write interest and retry on writability.
long SendNonBlocking(int fd, std::string_view data);

/// Half-closes the READ side only, unblocking any thread parked in recv on
/// this fd (it sees an orderly EOF) while leaving the write side usable —
/// an in-flight response can still be flushed. Used to tear down keep-alive
/// connections at server stop.
void ShutdownRead(int fd);

}  // namespace htd::util
