// Thin blocking TCP helpers over POSIX sockets.
//
// The network front-end (src/net/) deliberately uses plain blocking sockets
// plus a util::ThreadPool rather than an event loop or an external HTTP
// library: the request bodies are whole hypergraphs and the responses whole
// decompositions, so per-connection threads are the simple, dependency-free
// fit. Everything here reports through util::Status / return codes — no
// exceptions, no global state (SIGPIPE is avoided per-send with
// MSG_NOSIGNAL).
#pragma once

#include <cstddef>
#include <string>
#include <string_view>

#include "util/status.h"

namespace htd::util {

/// Owning wrapper for a socket file descriptor (closes on destruction).
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  /// Releases ownership without closing.
  int Release();
  void Close();

 private:
  int fd_ = -1;
};

/// Binds and listens on host:port (port 0 = kernel-assigned ephemeral port).
/// SO_REUSEADDR is set so restarted servers rebind immediately.
StatusOr<Socket> ListenTcp(const std::string& host, int port, int backlog);

/// The local port a listening (or connected) socket is bound to.
int LocalPort(int fd);

/// Accepts one connection; blocks at most `timeout_ms` (so accept loops can
/// poll a shutdown flag). Returns an invalid Socket on timeout or on a
/// transient accept failure.
Socket AcceptWithTimeout(int listen_fd, int timeout_ms);

/// Connects to host:port; kUnavailable-flavoured Internal status on failure.
StatusOr<Socket> ConnectTcp(const std::string& host, int port,
                            double timeout_seconds);

/// Sets SO_RCVTIMEO so blocking reads fail with EAGAIN after the timeout.
void SetRecvTimeout(int fd, double seconds);

/// Sets SO_SNDTIMEO so blocking writes to a stalled peer eventually fail.
void SetSendTimeout(int fd, double seconds);

/// Writes the whole buffer (retrying partial sends); false on any error.
bool SendAll(int fd, std::string_view data);

/// One blocking read of up to `capacity` bytes into `buffer`. Returns the
/// byte count, 0 on orderly peer close, -1 on error, -2 on recv timeout.
long RecvSome(int fd, char* buffer, size_t capacity);

/// Half-closes the READ side only, unblocking any thread parked in recv on
/// this fd (it sees an orderly EOF) while leaving the write side usable —
/// an in-flight response can still be flushed. Used to tear down keep-alive
/// connections at server stop.
void ShutdownRead(int fd);

}  // namespace htd::util
