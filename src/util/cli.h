// Strict numeric parsing for command-line flags.
//
// std::atoi silently turns garbage into 0 — `--port x` binds an ephemeral
// port, `--queue-depth x` sheds every request — and overflow is undefined
// behaviour. These helpers parse the FULL string (no trailing junk), check
// the permitted range, and report failure instead of guessing, so the tools
// (tools/hdserver.cc, tools/hdclient.cc) can print usage and exit non-zero
// on bad input. Kept exception-free like the rest of util/.
#pragma once

#include <string_view>

namespace htd::util {

/// Parses `text` as a base-10 integer in [min_value, max_value]. The whole
/// string must be consumed (leading/trailing whitespace and trailing
/// characters are errors); out-of-range values — including anything that
/// overflows long — fail rather than wrap. Returns false without touching
/// `*out` on failure.
bool ParseIntFlag(std::string_view text, long min_value, long max_value,
                  long* out);

/// Ditto for floating-point flags: full-string, finite, and >= min_value.
bool ParseDoubleFlag(std::string_view text, double min_value, double* out);

}  // namespace htd::util
