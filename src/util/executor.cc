#include "util/executor.h"

#include <chrono>
#include <utility>

namespace htd::util {
namespace {

// Worker identity for Submit routing and OnWorkerThread.
thread_local Executor* tl_executor = nullptr;
thread_local int tl_worker_slot = -1;

}  // namespace

// ---------------------------------------------------------------------------
// Executor

Executor::Executor(int num_workers) {
  if (num_workers < 1) num_workers = 1;
  workers_.reserve(static_cast<size_t>(num_workers));
  for (int i = 0; i < num_workers; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  threads_.reserve(static_cast<size_t>(num_workers));
  for (int i = 0; i < num_workers; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

Executor::~Executor() {
  {
    std::lock_guard<std::mutex> lock(lanes_mutex_);
    stopping_ = true;
  }
  lanes_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

namespace {
std::mutex g_global_mutex;
std::atomic<Executor*> g_global{nullptr};
}  // namespace

Executor& Executor::Global() {
  Executor* e = g_global.load(std::memory_order_acquire);
  if (e != nullptr) return *e;
  std::lock_guard<std::mutex> lock(g_global_mutex);
  e = g_global.load(std::memory_order_relaxed);
  if (e == nullptr) {
    unsigned hw = std::thread::hardware_concurrency();
    // Leaked on purpose: detached late work must never race static teardown.
    e = new Executor(hw == 0 ? 2 : static_cast<int>(hw));
    g_global.store(e, std::memory_order_release);
  }
  return *e;
}

void Executor::InitGlobal(int num_workers) {
  std::lock_guard<std::mutex> lock(g_global_mutex);
  if (g_global.load(std::memory_order_relaxed) == nullptr) {
    g_global.store(new Executor(num_workers), std::memory_order_release);
  }
}

void Executor::Submit(std::function<void()> fn, Lane lane) {
  if (tl_executor == this && tl_worker_slot >= 0) {
    Worker& w = *workers_[static_cast<size_t>(tl_worker_slot)];
    {
      std::lock_guard<std::mutex> lock(w.mutex);
      w.deque.push_back(std::move(fn));
    }
  } else {
    std::lock_guard<std::mutex> lock(lanes_mutex_);
    lanes_[static_cast<int>(lane)].push_back(std::move(fn));
  }
  unclaimed_.fetch_add(1, std::memory_order_relaxed);
  {
    // Lock/unlock pairs the notify with a parked worker's predicate check.
    std::lock_guard<std::mutex> lock(lanes_mutex_);
  }
  lanes_cv_.notify_one();
}

bool Executor::TryAcquire(int self, bool allow_background,
                          std::function<void()>* out) {
  // 1. Own deque, back first (LIFO keeps the hot subtree on this core).
  if (self >= 0) {
    Worker& w = *workers_[static_cast<size_t>(self)];
    std::lock_guard<std::mutex> lock(w.mutex);
    if (!w.deque.empty()) {
      *out = std::move(w.deque.back());
      w.deque.pop_back();
      unclaimed_.fetch_sub(1, std::memory_order_relaxed);
      return true;
    }
  }
  // 2. Lanes in priority order; every 64th pick scans in reverse so sync
  //    floods cannot starve the background lane.
  {
    std::lock_guard<std::mutex> lock(lanes_mutex_);
    uint64_t pick = lane_picks_.fetch_add(1, std::memory_order_relaxed);
    bool reverse = (pick & 63u) == 63u;
    for (int i = 0; i < kNumLanes; ++i) {
      int lane = reverse ? kNumLanes - 1 - i : i;
      if (!allow_background && lane == static_cast<int>(Lane::kBackground)) {
        continue;
      }
      if (!lanes_[lane].empty()) {
        *out = std::move(lanes_[lane].front());
        lanes_[lane].pop_front();
        unclaimed_.fetch_sub(1, std::memory_order_relaxed);
        return true;
      }
    }
  }
  // 3. Steal from another worker's deque, front first (oldest = biggest
  //    remaining subtree). Rotate the starting victim so thieves spread.
  int n = num_workers();
  int start = steal_seed_.fetch_add(1, std::memory_order_relaxed);
  for (int i = 0; i < n; ++i) {
    int victim = (start + i) % n;
    if (victim < 0) victim += n;
    if (victim == self) continue;
    Worker& w = *workers_[static_cast<size_t>(victim)];
    std::lock_guard<std::mutex> lock(w.mutex);
    if (!w.deque.empty()) {
      *out = std::move(w.deque.front());
      w.deque.pop_front();
      unclaimed_.fetch_sub(1, std::memory_order_relaxed);
      steals_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

void Executor::RunTask(std::function<void()>& fn) {
  busy_.fetch_add(1, std::memory_order_relaxed);
  fn();
  busy_.fetch_sub(1, std::memory_order_relaxed);
}

void Executor::WorkerLoop(int slot) {
  tl_executor = this;
  tl_worker_slot = slot;
  for (;;) {
    std::function<void()> fn;
    if (TryAcquire(slot, /*allow_background=*/true, &fn)) {
      RunTask(fn);
      fn = nullptr;
      continue;
    }
    std::unique_lock<std::mutex> lock(lanes_mutex_);
    if (stopping_ && unclaimed_.load(std::memory_order_relaxed) == 0) return;
    lanes_cv_.wait_for(lock, std::chrono::milliseconds(50), [this] {
      return stopping_ || unclaimed_.load(std::memory_order_relaxed) > 0;
    });
    if (stopping_ && unclaimed_.load(std::memory_order_relaxed) == 0) return;
  }
}

void Executor::HelpWhileWaiting(const std::function<bool()>& ready) {
  int self = (tl_executor == this) ? tl_worker_slot : -1;
  while (!ready()) {
    std::function<void()> fn;
    if (TryAcquire(self, /*allow_background=*/false, &fn)) {
      RunTask(fn);
      continue;
    }
    std::unique_lock<std::mutex> lock(lanes_mutex_);
    lanes_cv_.wait_for(lock, std::chrono::milliseconds(1));
  }
}

bool Executor::OnWorkerThread() const {
  return tl_executor == this && tl_worker_slot >= 0;
}

size_t Executor::queue_depth() const {
  return unclaimed_.load(std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// TaskGroup

namespace {
thread_local void* tl_group_root = nullptr;
thread_local int tl_group_depth = 0;
}  // namespace

TaskGroup::Participant::Participant(State* root)
    : root_(root),
      prev_root_(static_cast<State*>(tl_group_root)),
      prev_depth_(tl_group_depth),
      counted_(tl_group_root != root) {
  if (!counted_) {
    ++tl_group_depth;
    return;
  }
  tl_group_root = root;
  tl_group_depth = 1;
  int cur = root->running.fetch_add(1, std::memory_order_relaxed) + 1;
  int peak = root->peak.load(std::memory_order_relaxed);
  while (cur > peak &&
         !root->peak.compare_exchange_weak(peak, cur,
                                           std::memory_order_relaxed)) {
  }
}

TaskGroup::Participant::~Participant() {
  if (!counted_) {
    --tl_group_depth;
    return;
  }
  root_->running.fetch_sub(1, std::memory_order_relaxed);
  tl_group_root = prev_root_;
  tl_group_depth = prev_depth_;
}

TaskGroup::TaskGroup(Executor& executor, CancelToken* cancel,
                     Executor::Lane lane)
    : state_(std::make_shared<State>()) {
  state_->executor = &executor;
  state_->cancel = cancel;
  state_->lane = lane;
  state_->root = state_.get();
}

TaskGroup::TaskGroup(TaskGroup& parent) : state_(std::make_shared<State>()) {
  state_->executor = parent.state_->executor;
  state_->cancel = parent.state_->cancel;
  state_->lane = parent.state_->lane;
  state_->root_ref =
      parent.state_->root_ref ? parent.state_->root_ref : parent.state_;
  state_->root = state_->root_ref->root;
}

TaskGroup::~TaskGroup() { WaitImpl(/*rethrow=*/false); }

void TaskGroup::Spawn(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(state_->mutex);
    state_->bag.push_back(std::move(fn));
    ++state_->pending;
  }
  // Wake a waiter so it can help with the new work.
  state_->done_cv.notify_all();
  auto st = state_;
  state_->executor->Submit([st] { RunOne(st); }, state_->lane);
}

void TaskGroup::Run(const std::function<void()>& fn) {
  Participant participant(state_->root);
  try {
    fn();
  } catch (...) {
    std::lock_guard<std::mutex> lock(state_->mutex);
    if (!state_->first_error) state_->first_error = std::current_exception();
    state_->failed.store(true, std::memory_order_relaxed);
  }
}

void TaskGroup::Execute(const std::shared_ptr<State>& state,
                        std::function<void()>& fn) {
  {
    Participant participant(state->root);
    try {
      fn();
    } catch (...) {
      std::lock_guard<std::mutex> lock(state->mutex);
      if (!state->first_error) state->first_error = std::current_exception();
      state->failed.store(true, std::memory_order_relaxed);
    }
  }
  std::lock_guard<std::mutex> lock(state->mutex);
  if (--state->pending == 0) state->done_cv.notify_all();
}

void TaskGroup::RunOne(const std::shared_ptr<State>& state) {
  std::function<void()> fn;
  {
    std::lock_guard<std::mutex> lock(state->mutex);
    if (state->bag.empty()) return;  // stale ticket — someone else helped
    fn = std::move(state->bag.front());
    state->bag.pop_front();
  }
  Execute(state, fn);
}

void TaskGroup::WaitImpl(bool rethrow) {
  for (;;) {
    std::function<void()> fn;
    {
      std::unique_lock<std::mutex> lock(state_->mutex);
      if (!state_->bag.empty()) {
        fn = std::move(state_->bag.back());
        state_->bag.pop_back();
      } else if (state_->pending == 0) {
        break;
      } else {
        state_->done_cv.wait(lock, [this] {
          return state_->pending == 0 || !state_->bag.empty();
        });
        continue;
      }
    }
    Execute(state_, fn);
  }
  if (!rethrow) return;
  std::exception_ptr error;
  {
    std::lock_guard<std::mutex> lock(state_->mutex);
    error = state_->first_error;
    state_->first_error = nullptr;
  }
  if (error) std::rethrow_exception(error);
}

void TaskGroup::Wait() { WaitImpl(/*rethrow=*/true); }

bool TaskGroup::cancelled() const {
  if (state_->failed.load(std::memory_order_relaxed)) return true;
  return state_->cancel != nullptr && state_->cancel->ShouldStop();
}

int TaskGroup::peak_width() const {
  return state_->root->peak.load(std::memory_order_relaxed);
}

}  // namespace htd::util
