// Shared 64-bit mixing primitives.
//
// Both the solver-config digest (core/solver_factory.h) and the canonical
// hypergraph fingerprint (service/canonical.h) feed these into persistent
// cache keys, so the two must stay bit-identical — hence one definition
// here rather than per-file copies. Treat any change as a cache-format
// break.
#pragma once

#include <cstdint>

namespace htd::util {

inline uint64_t Mix64(uint64_t x) {
  // splitmix64 finalizer.
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

inline uint64_t HashCombine(uint64_t seed, uint64_t value) {
  return Mix64(seed ^ (value + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2)));
}

}  // namespace htd::util
