// Fixed-size thread pool.
//
// Used by the parallel separator search (src/core/parallel_search.*) and by
// the benchmark runner. Tasks are plain std::function<void()>; coordination
// (early exit, result hand-off) is owned by the caller.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace htd::util {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished executing.
  void WaitIdle();

  int num_threads() const { return static_cast<int>(workers_.size()); }

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  int active_ = 0;
  bool shutting_down_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace htd::util
