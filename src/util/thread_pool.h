// Fixed-size thread pool.
//
// Used by the HTTP server's IO loop (src/net/server.*), where blocking a
// dedicated thread per live connection is the point. All compute — the
// parallel separator search and the service-layer batch scheduler — runs on
// the fleet-wide work-stealing executor instead (util/executor.h). Tasks
// are plain std::function<void()>; coordination (early exit, result
// hand-off) is owned by the caller.
//
// Exception safety: a task that throws does not take down the worker thread.
// The first escaped exception is recorded and can be re-examined (or
// rethrown) by the owner via TakeException(); later ones only bump
// exception_count(). Callers that need per-task propagation (the scheduler)
// wrap their tasks in promise/future pairs instead of relying on this.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace htd::util {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution.
  void Submit(std::function<void()> task);

  /// Enqueues a batch of tasks under a single lock acquisition and wakes
  /// enough workers to drain it. Cheaper than a Submit() loop when fanning
  /// out many jobs at once (the scheduler's common case).
  void SubmitBatch(std::vector<std::function<void()>> tasks);

  /// Blocks until every submitted task has finished executing.
  void WaitIdle();

  /// Number of tasks whose exceptions escaped into the worker loop so far.
  size_t exception_count() const;

  /// Returns the first recorded task exception and clears it (nullptr when
  /// none). The count is left untouched so callers can still detect that
  /// further tasks failed.
  std::exception_ptr TakeException();

  int num_threads() const { return static_cast<int>(workers_.size()); }

 private:
  void WorkerLoop();

  mutable std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  int active_ = 0;
  bool shutting_down_ = false;
  std::exception_ptr first_exception_;
  size_t exception_count_ = 0;
  std::vector<std::thread> workers_;
};

}  // namespace htd::util
