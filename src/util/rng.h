// Deterministic, platform-independent PRNG for the synthetic corpus.
//
// std::mt19937_64 output is portable but the standard distributions are not;
// we therefore implement the few samplers we need on top of splitmix64.
#pragma once

#include <cstdint>
#include <vector>

#include "util/logging.h"

namespace htd::util {

class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  /// Next raw 64-bit value (splitmix64).
  uint64_t Next64();

  /// Uniform integer in [lo, hi] inclusive.
  int UniformInt(int lo, int hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Bernoulli trial with success probability p.
  bool Chance(double p) { return UniformDouble() < p; }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (int i = static_cast<int>(v.size()) - 1; i > 0; --i) {
      int j = UniformInt(0, i);
      std::swap(v[i], v[j]);
    }
  }

  /// Samples `count` distinct values from [lo, hi] (inclusive), sorted.
  std::vector<int> SampleDistinct(int lo, int hi, int count);

  /// Derives an independent child generator (for per-instance determinism).
  Rng Fork() { return Rng(Next64() ^ 0x9e3779b97f4a7c15ull); }

 private:
  uint64_t state_;
};

}  // namespace htd::util
