// Cheap monotonic counters, callback gauges, and log-bucketed latency
// histograms behind a registry that renders Prometheus text exposition.
//
// The registry is instantiable (not a singleton): each DecompositionService
// owns one, so tests running several servers in one process keep their
// counters separate. Updates are relaxed atomics; registration takes a
// mutex once per metric. Snapshot() reads every metric exactly once, in
// registration order — register derived counters before their totals
// (cache hits before submissions) and a single snapshot can never report
// a part exceeding its whole, which is the /v1/stats consistency fix.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace htd::util {

/// Monotonic counter.
class Counter {
 public:
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Latency histogram with log-2 bucket bounds: 1us, 2us, 4us, ... 2^26us
/// (~67s), then +Inf. Observations are clamped at zero.
class Histogram {
 public:
  static constexpr int kFiniteBuckets = 27;  ///< bounds 2^0 .. 2^26 us
  static constexpr int kBucketCount = kFiniteBuckets + 1;  ///< + the +Inf one

  void Observe(double seconds);

  /// The bucket an observation of `seconds` falls into (for tests).
  static int BucketIndex(double seconds);
  /// Upper bound of finite bucket `i` in seconds; +Inf slot excluded.
  static double BucketBound(int i);

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  double SumSeconds() const {
    return static_cast<double>(sum_ns_.load(std::memory_order_relaxed)) * 1e-9;
  }
  uint64_t BucketValue(int i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> buckets_[kBucketCount] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_ns_{0};
};

/// One sampled value in a registry snapshot.
struct MetricSample {
  std::string name;
  std::string labels;  ///< rendered label list without braces, may be empty
  double value = 0.0;
};

class MetricsRegistry {
 public:
  /// Returns the counter registered under (name, labels), creating it on
  /// first use. References stay valid for the registry's lifetime.
  Counter& GetCounter(const std::string& name, const std::string& labels = "");
  Histogram& GetHistogram(const std::string& name,
                          const std::string& labels = "");

  /// Registers a callback sampled at snapshot/render time. `type` is the
  /// Prometheus type to advertise ("gauge" or "counter").
  void RegisterCallback(const std::string& name, const std::string& labels,
                        const std::string& type,
                        std::function<double()> callback);

  /// Attaches a HELP line to a metric family.
  void SetHelp(const std::string& name, const std::string& help);

  /// Reads every counter and callback exactly once, in registration
  /// order. Histograms are excluded (render-only).
  std::vector<MetricSample> Snapshot() const;

  /// Prometheus text exposition (version 0.0.4) of everything registered.
  std::string RenderPrometheus() const;

 private:
  struct Entry {
    std::string name;
    std::string labels;
    std::string type;  ///< "counter", "gauge", or "histogram"
    Counter* counter = nullptr;
    Histogram* histogram = nullptr;
    std::function<double()> callback;
  };

  Entry* Find(const std::string& name, const std::string& labels);

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Entry>> entries_;
  std::map<std::string, std::string> help_;
  std::vector<std::unique_ptr<Counter>> counters_;
  std::vector<std::unique_ptr<Histogram>> histograms_;
};

/// Formats a double the way the registry renders values: integers without
/// a decimal point, everything else with %g.
std::string FormatMetricValue(double value);

}  // namespace htd::util
