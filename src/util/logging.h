// Minimal CHECK-style assertion macros (glog-flavoured, exception-free).
//
// HTD_CHECK(cond) << "message";  aborts with file/line + streamed message if
// cond is false. HTD_DCHECK compiles to a no-op in NDEBUG builds.
#pragma once

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace htd::util {

/// Collects a streamed failure message and aborts the process on destruction.
/// Used by the HTD_CHECK family below; not intended for direct use.
class FatalMessage {
 public:
  FatalMessage(const char* file, int line, const char* condition) {
    stream_ << "CHECK failed at " << file << ":" << line << ": " << condition
            << " ";
  }

  [[noreturn]] ~FatalMessage() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }

  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

/// Swallows the streamed expression when a check is compiled out.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace htd::util

#define HTD_CHECK(cond)                                            \
  if (!(cond))                                                     \
  ::htd::util::FatalMessage(__FILE__, __LINE__, #cond).stream()

#define HTD_CHECK_EQ(a, b) HTD_CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ") "
#define HTD_CHECK_NE(a, b) HTD_CHECK((a) != (b)) << "(" << (a) << " vs " << (b) << ") "
#define HTD_CHECK_LT(a, b) HTD_CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ") "
#define HTD_CHECK_LE(a, b) HTD_CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ") "
#define HTD_CHECK_GT(a, b) HTD_CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ") "
#define HTD_CHECK_GE(a, b) HTD_CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ") "

#ifdef NDEBUG
#define HTD_DCHECK(cond) \
  if (false) ::htd::util::NullStream()
#else
#define HTD_DCHECK(cond) HTD_CHECK(cond)
#endif
