#include "util/rng.h"

#include <algorithm>
#include <unordered_set>

namespace htd::util {

uint64_t Rng::Next64() {
  // splitmix64 (public domain, Vigna).
  uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

int Rng::UniformInt(int lo, int hi) {
  HTD_CHECK_LE(lo, hi);
  uint64_t range = static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo) + 1;
  // Lemire's multiply-shift rejection method for unbiased bounded integers.
  uint64_t x = Next64();
  __uint128_t m = static_cast<__uint128_t>(x) * range;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < range) {
    uint64_t threshold = -range % range;
    while (l < threshold) {
      x = Next64();
      m = static_cast<__uint128_t>(x) * range;
      l = static_cast<uint64_t>(m);
    }
  }
  return lo + static_cast<int>(m >> 64);
}

double Rng::UniformDouble() {
  return (Next64() >> 11) * 0x1.0p-53;
}

std::vector<int> Rng::SampleDistinct(int lo, int hi, int count) {
  int universe = hi - lo + 1;
  HTD_CHECK_LE(count, universe);
  std::vector<int> out;
  out.reserve(count);
  if (count * 3 >= universe) {
    // Dense case: shuffle the universe prefix.
    std::vector<int> all(universe);
    for (int i = 0; i < universe; ++i) all[i] = lo + i;
    Shuffle(all);
    out.assign(all.begin(), all.begin() + count);
  } else {
    std::unordered_set<int> seen;
    while (static_cast<int>(out.size()) < count) {
      int v = UniformInt(lo, hi);
      if (seen.insert(v).second) out.push_back(v);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace htd::util
