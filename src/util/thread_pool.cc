#include "util/thread_pool.h"

#include <algorithm>

#include "util/logging.h"

namespace htd::util {

ThreadPool::ThreadPool(int num_threads) {
  num_threads = std::max(1, num_threads);
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  HTD_CHECK(task != nullptr);
  {
    std::unique_lock<std::mutex> lock(mutex_);
    HTD_CHECK(!shutting_down_) << "Submit after shutdown";
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_.notify_all();
    }
  }
}

}  // namespace htd::util
