#include "util/thread_pool.h"

#include <algorithm>

#include "util/logging.h"

namespace htd::util {

ThreadPool::ThreadPool(int num_threads) {
  num_threads = std::max(1, num_threads);
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  HTD_CHECK(task != nullptr);
  {
    std::unique_lock<std::mutex> lock(mutex_);
    HTD_CHECK(!shutting_down_) << "Submit after shutdown";
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::SubmitBatch(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    HTD_CHECK(!shutting_down_) << "SubmitBatch after shutdown";
    for (auto& task : tasks) {
      HTD_CHECK(task != nullptr);
      queue_.push_back(std::move(task));
    }
  }
  if (tasks.size() >= workers_.size()) {
    work_available_.notify_all();
  } else {
    for (size_t i = 0; i < tasks.size(); ++i) work_available_.notify_one();
  }
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

size_t ThreadPool::exception_count() const {
  std::unique_lock<std::mutex> lock(mutex_);
  return exception_count_;
}

std::exception_ptr ThreadPool::TakeException() {
  std::unique_lock<std::mutex> lock(mutex_);
  std::exception_ptr e = first_exception_;
  first_exception_ = nullptr;
  return e;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    std::exception_ptr escaped;
    try {
      task();
    } catch (...) {
      escaped = std::current_exception();
    }
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (escaped) {
        if (!first_exception_) first_exception_ = escaped;
        ++exception_count_;
      }
      --active_;
      if (queue_.empty() && active_ == 0) idle_.notify_all();
    }
  }
}

}  // namespace htd::util
