#include "util/stats.h"

#include <algorithm>
#include <cmath>

namespace htd::util {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    max_ = min_ = x;
  } else {
    max_ = std::max(max_, x);
    min_ = std::min(min_, x);
  }
  ++count_;
  sum_ += x;
  sum_sq_ += x * x;
}

double RunningStats::StdDev() const {
  if (count_ == 0) return 0.0;
  double mean = Mean();
  double var = sum_sq_ / count_ - mean * mean;
  return var > 0 ? std::sqrt(var) : 0.0;
}

}  // namespace htd::util
