#include "util/socket.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <ctime>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

namespace htd::util {

namespace {

/// Parses a dotted-quad address; "localhost" is accepted as 127.0.0.1 (the
/// server is loopback-first; no DNS resolution, no external deps).
bool ParseAddress(const std::string& host, in_addr* out) {
  if (host.empty() || host == "localhost") {
    return inet_pton(AF_INET, "127.0.0.1", out) == 1;
  }
  return inet_pton(AF_INET, host.c_str(), out) == 1;
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

int Socket::Release() {
  int fd = fd_;
  fd_ = -1;
  return fd;
}

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

StatusOr<Socket> ListenTcp(const std::string& host, int port, int backlog) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (!ParseAddress(host, &addr.sin_addr)) {
    return Status::InvalidArgument("cannot parse listen address: " + host);
  }
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) {
    return Status::Internal(std::string("socket(): ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(sock.fd(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return Status::Internal("bind(" + host + ":" + std::to_string(port) +
                            "): " + std::strerror(errno));
  }
  if (::listen(sock.fd(), backlog) != 0) {
    return Status::Internal(std::string("listen(): ") + std::strerror(errno));
  }
  return sock;
}

int LocalPort(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) return -1;
  return static_cast<int>(ntohs(addr.sin_port));
}

Socket AcceptWithTimeout(int listen_fd, int timeout_ms) {
  pollfd pfd{listen_fd, POLLIN, 0};
  int ready = ::poll(&pfd, 1, timeout_ms);
  if (ready <= 0 || (pfd.revents & POLLIN) == 0) return Socket();
  int fd = ::accept(listen_fd, nullptr, nullptr);
  if (fd < 0) {
    // Persistent accept failures (EMFILE under fd exhaustion is the classic)
    // leave the pending connection readable, so a bare retry would spin the
    // accept loop at 100% CPU. Back off briefly before handing control back.
    timespec backoff{0, 10 * 1000 * 1000};  // 10 ms
    ::nanosleep(&backoff, nullptr);
    return Socket();
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Socket(fd);
}

AcceptOutcome AcceptPolled(int listen_fd, int timeout_ms) {
  AcceptOutcome outcome;
  pollfd pfd{listen_fd, POLLIN, 0};
  int ready = ::poll(&pfd, 1, timeout_ms);
  if (ready <= 0 || (pfd.revents & POLLIN) == 0) return outcome;
  int fd = ::accept(listen_fd, nullptr, nullptr);
  if (fd < 0) {
    outcome.soft_failure = true;
    outcome.error = errno;
    return outcome;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  outcome.socket = Socket(fd);
  return outcome;
}

StatusOr<Socket> ConnectTcp(const std::string& host, int port,
                            double timeout_seconds) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (!ParseAddress(host, &addr.sin_addr)) {
    return Status::InvalidArgument("cannot parse address: " + host);
  }
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) {
    return Status::Internal(std::string("socket(): ") + std::strerror(errno));
  }
  SetRecvTimeout(sock.fd(), timeout_seconds);
  if (timeout_seconds > 0) {
    timeval tv;
    tv.tv_sec = static_cast<long>(timeout_seconds);
    tv.tv_usec = static_cast<long>((timeout_seconds - tv.tv_sec) * 1e6);
    ::setsockopt(sock.fd(), SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  }
  if (::connect(sock.fd(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return Status::Internal("connect(" + host + ":" + std::to_string(port) +
                            "): " + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(sock.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return sock;
}

void SetRecvTimeout(int fd, double seconds) {
  if (seconds <= 0) return;
  timeval tv;
  tv.tv_sec = static_cast<long>(seconds);
  tv.tv_usec = static_cast<long>((seconds - tv.tv_sec) * 1e6);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

void SetSendTimeout(int fd, double seconds) {
  if (seconds <= 0) return;
  timeval tv;
  tv.tv_sec = static_cast<long>(seconds);
  tv.tv_usec = static_cast<long>((seconds - tv.tv_sec) * 1e6);
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

bool SendAll(int fd, std::string_view data) {
  size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n = ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

long RecvSome(int fd, char* buffer, size_t capacity) {
  while (true) {
    ssize_t n = ::recv(fd, buffer, capacity, 0);
    if (n >= 0) return static_cast<long>(n);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return -2;
    return -1;
  }
}

bool SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  return ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

long SendNonBlocking(int fd, std::string_view data) {
  while (true) {
    ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (n >= 0) return static_cast<long>(n);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return -2;
    return -1;
  }
}

void ShutdownRead(int fd) { ::shutdown(fd, SHUT_RD); }

}  // namespace htd::util
