// Lightweight Status / StatusOr error handling (absl-inspired, exception-free).
//
// Used by fallible library entry points such as parsers. Internal invariants
// use HTD_CHECK instead.
#pragma once

#include <optional>
#include <string>
#include <utility>

#include "util/logging.h"

namespace htd::util {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kFailedPrecondition = 3,
  kInternal = 4,
};

/// Result of a fallible operation: either OK or a code plus a human-readable
/// message describing what went wrong.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    if (ok()) return "OK";
    return message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Callers must test ok() before
/// dereferencing; value access on an error status aborts.
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    HTD_CHECK(!status_.ok()) << "StatusOr constructed from OK status without value";
  }
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    HTD_CHECK(ok()) << "value() on error StatusOr: " << status_.message();
    return *value_;
  }
  T& value() & {
    HTD_CHECK(ok()) << "value() on error StatusOr: " << status_.message();
    return *value_;
  }
  T&& value() && {
    HTD_CHECK(ok()) << "value() on error StatusOr: " << status_.message();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace htd::util
