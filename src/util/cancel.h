// Cooperative cancellation with optional deadline.
//
// All solvers poll a CancelToken at candidate-separator granularity so the
// benchmark runner can enforce per-instance timeouts in-process (the paper's
// experiments used HTCondor job limits; see DESIGN.md §4).
#pragma once

#include <atomic>
#include <chrono>

namespace htd::util {

class CancelToken {
 public:
  CancelToken() = default;

  /// Requests cooperative stop; ShouldStop() returns true from now on.
  void RequestStop() { stop_.store(true, std::memory_order_relaxed); }

  /// Arms a wall-clock deadline after which ShouldStop() returns true.
  void SetDeadline(std::chrono::steady_clock::time_point deadline) {
    deadline_ = deadline;
    has_deadline_.store(true, std::memory_order_relaxed);
  }
  void SetTimeout(std::chrono::duration<double> timeout) {
    SetDeadline(std::chrono::steady_clock::now() +
                std::chrono::duration_cast<std::chrono::steady_clock::duration>(timeout));
  }

  bool ShouldStop() const {
    if (stop_.load(std::memory_order_relaxed)) return true;
    if (has_deadline_.load(std::memory_order_relaxed) &&
        std::chrono::steady_clock::now() >= deadline_) {
      stop_.store(true, std::memory_order_relaxed);
      return true;
    }
    return false;
  }

 private:
  mutable std::atomic<bool> stop_{false};
  std::atomic<bool> has_deadline_{false};
  std::chrono::steady_clock::time_point deadline_{};
};

}  // namespace htd::util
