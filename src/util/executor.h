// Fleet-wide work-stealing executor shared by every solve in the process.
//
// One `Executor` owns all compute threads (solver chunk workers, scheduler
// flights, background query jobs). Each worker thread keeps a private deque:
// tasks spawned from that worker push onto the back and are popped from the
// back (LIFO, cache-hot), while idle workers steal from the front of other
// workers' deques (FIFO, oldest-first — the classic Blumofe/Leiserson shape,
// here "lock-free-ish": each deque is guarded by its own small mutex whose
// critical sections are a handful of pointer moves, which keeps the whole
// thing trivially TSan-clean at no measurable cost next to a candidate
// check). Tasks submitted from non-worker threads land in one of three
// priority lanes:
//
//   kSync       interactive solves (a client is blocked on the answer)
//   kAsync      async decompose flights (client polls a job id)
//   kBackground query jobs and other best-effort work
//
// Idle workers drain lanes in priority order, but roughly every 64th lane
// pick scans in reverse so a flood of sync traffic cannot starve the
// background lane forever.
//
// `TaskGroup` is the structured-concurrency layer on top: a group owns a bag
// of spawned closures, and what goes into the executor is only a *ticket*
// (a shared handle to the group state). Whoever runs the ticket first —
// an idle worker, a thief, or the group's own `Wait()` — pops one closure
// from the bag; late tickets find the bag empty and are no-ops. Because
// `Wait()` drains its own bag inline, a waiter can never deadlock on its own
// spawned work, whatever the worker count. Groups inherit cancellation from
// a borrowed `CancelToken` (the scheduler lends the flight token, so a
// deadline cancels the whole group) and record the peak number of threads
// concurrently inside the group tree — that peak is what the scheduler now
// reports as `JobResult::threads_used`.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "util/cancel.h"

namespace htd::util {

class TaskGroup;

class Executor {
 public:
  enum class Lane : int { kSync = 0, kAsync = 1, kBackground = 2 };
  static constexpr int kNumLanes = 3;

  /// Spawns `num_workers` threads (floored at 1).
  explicit Executor(int num_workers);
  /// Drains every queued task, then joins the workers.
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// The process-wide executor. Created on first use with
  /// `hardware_concurrency()` workers unless InitGlobal ran earlier.
  /// Never destroyed (intentionally leaked so late detached work can't
  /// race static teardown).
  static Executor& Global();
  /// Sizes the global executor before anything touches it. No-op if the
  /// singleton already exists.
  static void InitGlobal(int num_workers);

  /// Enqueues a task. From a worker thread the task goes to that worker's
  /// own deque (LIFO); from anywhere else it goes to the given lane.
  void Submit(std::function<void()> fn, Lane lane = Lane::kSync);

  /// Runs executor work on the calling thread until `ready()` returns
  /// true. Only sync/async-lane tasks and deque steals are eligible —
  /// never the background lane, whose tasks may themselves block on
  /// solves (running one here could recurse into another blocking wait).
  /// Callable from any thread; non-worker threads that find no eligible
  /// work just poll `ready` with a short sleep.
  void HelpWhileWaiting(const std::function<bool()>& ready);

  /// True when the calling thread is one of this executor's workers.
  bool OnWorkerThread() const;

  int num_workers() const { return static_cast<int>(workers_.size()); }
  /// Workers currently executing a task (gauge).
  int workers_busy() const { return busy_.load(std::memory_order_relaxed); }
  /// Tasks sitting in lanes + worker deques, not yet claimed (gauge).
  size_t queue_depth() const;
  /// Tasks a worker took from another worker's deque (counter).
  uint64_t steals_total() const {
    return steals_.load(std::memory_order_relaxed);
  }

 private:
  friend class TaskGroup;

  struct Worker {
    std::mutex mutex;
    std::deque<std::function<void()>> deque;  // back = own LIFO, front = steal
  };

  // Claims one task, preferring: own deque back, lanes by priority
  // (rotated for starvation freedom), then stealing. `self` is -1 for
  // non-worker threads (helping); `allow_background` gates the background
  // lane. Returns false if nothing is runnable right now.
  bool TryAcquire(int self, bool allow_background, std::function<void()>* out);
  void RunTask(std::function<void()>& fn);
  void WorkerLoop(int slot);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;

  std::mutex lanes_mutex_;
  std::condition_variable lanes_cv_;
  std::deque<std::function<void()>> lanes_[kNumLanes];
  bool stopping_ = false;

  std::atomic<int> busy_{0};
  std::atomic<size_t> unclaimed_{0};  // pushed but not yet claimed, all queues
  std::atomic<uint64_t> steals_{0};
  std::atomic<uint64_t> lane_picks_{0};
  std::atomic<int> steal_seed_{0};
};

/// Structured task group on an executor. Spawn closures, Wait for all of
/// them; Wait rethrows the first exception any task threw (after every
/// task finished, matching the scheduler's promise path). Nested groups
/// (the parallel separator search opens one per recursion level) share the
/// root group's cancellation and width accounting.
class TaskGroup {
 public:
  /// Root group. `cancel` is borrowed (may be null) — the group reports
  /// cancelled() when the token fires or a task throws.
  explicit TaskGroup(Executor& executor, CancelToken* cancel = nullptr,
                     Executor::Lane lane = Executor::Lane::kSync);
  /// Nested group: shares the parent's executor, lane, cancellation and
  /// peak-width accounting.
  explicit TaskGroup(TaskGroup& parent);
  /// Waits for stragglers (exceptions are swallowed here — call Wait()
  /// yourself if you care, and you should).
  ~TaskGroup();

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Queues `fn` on this group. Never runs it inline.
  void Spawn(std::function<void()> fn);

  /// Runs `fn` on the calling thread as a group participant (counts
  /// toward peak width like a spawned task).
  void Run(const std::function<void()>& fn);

  /// Blocks until every spawned task of *this* group finished, helping by
  /// draining this group's own bag inline. Rethrows the first captured
  /// exception.
  void Wait();

  /// True once the borrowed token fired or any task threw.
  bool cancelled() const;
  CancelToken* cancel_token() const { return state_->cancel; }

  /// Peak number of threads concurrently running tasks anywhere in this
  /// group's root tree (0 if nothing ever ran).
  int peak_width() const;

  Executor& executor() const { return *state_->executor; }

 private:
  struct State {
    Executor* executor = nullptr;
    CancelToken* cancel = nullptr;  // borrowed, may be null
    Executor::Lane lane = Executor::Lane::kSync;
    State* root = nullptr;               // width accounting lives here
    std::shared_ptr<State> root_ref;     // keeps a nested group's root alive

    std::mutex mutex;
    std::condition_variable done_cv;
    std::deque<std::function<void()>> bag;
    int pending = 0;  // spawned, not yet finished
    std::exception_ptr first_error;
    std::atomic<bool> failed{false};

    // Root-only: concurrent participants, and the high-water mark.
    std::atomic<int> running{0};
    std::atomic<int> peak{0};
  };

  // RAII participant registration against the root state; a thread
  // already inside the same root tree is not double-counted.
  class Participant {
   public:
    explicit Participant(State* root);
    ~Participant();

   private:
    State* root_;
    State* prev_root_;
    int prev_depth_;
    bool counted_;
  };

  static void RunOne(const std::shared_ptr<State>& state);
  static void Execute(const std::shared_ptr<State>& state,
                      std::function<void()>& fn);
  void WaitImpl(bool rethrow);

  std::shared_ptr<State> state_;
};

}  // namespace htd::util
