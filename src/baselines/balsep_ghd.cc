#include "baselines/balsep_ghd.h"

#include <vector>

#include "decomp/components.h"
#include "decomp/fragment.h"
#include "decomp/special_edges.h"
#include "decomp/validation.h"
#include "util/combinations.h"
#include "util/timer.h"

namespace htd {
namespace {

enum class GhdStatus { kFound, kNotFound, kStopped };

class GhdEngine {
 public:
  GhdEngine(const Hypergraph& graph, int k, const SolveOptions& options,
            StatsCounters& stats)
      : graph_(graph),
        registry_(graph.num_vertices()),
        k_(k),
        options_(options),
        stats_(stats) {}

  GhdStatus Decompose(const ExtendedSubhypergraph& comp,
                      const util::DynamicBitset& conn, int depth,
                      Fragment& fragment, int parent_node) {
    stats_.recursive_calls.fetch_add(1, std::memory_order_relaxed);
    stats_.UpdateMaxDepth(depth);
    if (ShouldStop()) return GhdStatus::kStopped;

    const util::DynamicBitset vertices = VerticesOf(graph_, registry_, comp);
    // Base case: the whole component fits under one node.
    if (comp.edge_count <= k_) {
      int node = fragment.AddNode(comp.edges.ToVector(), vertices);
      if (parent_node >= 0) {
        fragment.AddChild(parent_node, node);
      } else {
        fragment.SetRoot(node);
      }
      return GhdStatus::kFound;
    }

    const int total = comp.size();
    // Candidate λ-edges with the component's own edges first: the fallback
    // pass needs the "at least one component edge" restriction for
    // termination (see below), which the first-element bound provides.
    std::vector<int> candidates;
    comp.edges.ForEach([&](int e) { candidates.push_back(e); });
    const int num_own = static_cast<int>(candidates.size());
    for (int e = 0; e < graph_.num_edges(); ++e) {
      if (!comp.edges.Test(e) && graph_.edge_vertices(e).Intersects(vertices)) {
        candidates.push_back(e);
      }
    }
    const int n = static_cast<int>(candidates.size());

    // Pass 1 (the defining BalancedGo move): balanced separators only —
    // every component at most half, guaranteeing logarithmic recursion.
    // Pass 2 (fallback, replacing BalancedGo's special-edge machinery):
    // any separator covering Conn; λ must contain a component edge, so the
    // covered edge shrinks every subproblem and the recursion terminates.
    for (bool require_balanced : {true, false}) {
      const int first_limit = require_balanced ? n : num_own;
      std::vector<int> lambda;
      for (const util::SubsetChunk& chunk :
           util::MakeSubsetChunks(n, k_, first_limit)) {
        util::FixedFirstEnumerator enumerator(n, chunk.size, chunk.first);
        while (enumerator.Next()) {
          if (ShouldStop()) return GhdStatus::kStopped;
          stats_.separators_tried.fetch_add(1, std::memory_order_relaxed);
          lambda.clear();
          for (int idx : enumerator.indices()) lambda.push_back(candidates[idx]);
          util::DynamicBitset lambda_union = graph_.UnionOfEdges(lambda);
          if (!conn.IsSubsetOf(lambda_union)) continue;

          ComponentSplit split =
              SplitComponents(graph_, registry_, comp, lambda_union);
          if (require_balanced && split.MaxComponentSize() * 2 > total) continue;

          util::DynamicBitset chi = lambda_union & vertices;
          // Tentatively build this node and its subtree; roll back on failure.
          const int checkpoint = fragment.num_nodes();
          int node = fragment.AddNode(lambda, chi);
          bool ok = true;
          for (size_t i = 0; i < split.components.size() && ok; ++i) {
            util::DynamicBitset child_conn = split.component_vertices[i] & chi;
            GhdStatus sub = Decompose(split.components[i], child_conn, depth + 1,
                                      fragment, node);
            if (sub == GhdStatus::kStopped) return sub;
            if (sub == GhdStatus::kNotFound) ok = false;
          }
          if (!ok) {
            fragment.TruncateTo(checkpoint);
            continue;
          }
          if (parent_node >= 0) {
            fragment.AddChild(parent_node, node);
          } else {
            fragment.SetRoot(node);
          }
          return GhdStatus::kFound;
        }
      }
    }
    return GhdStatus::kNotFound;
  }

 private:
  bool ShouldStop() const {
    return options_.cancel != nullptr && options_.cancel->ShouldStop();
  }

  const Hypergraph& graph_;
  SpecialEdgeRegistry registry_;
  const int k_;
  const SolveOptions& options_;
  StatsCounters& stats_;
};

}  // namespace

SolveResult BalSepGhd::Solve(const Hypergraph& graph, int k) {
  util::WallTimer timer;
  SolveResult result;
  if (graph.num_edges() == 0) {
    result.outcome = Outcome::kYes;
    result.decomposition = Decomposition();
    result.stats.seconds = timer.ElapsedSeconds();
    return result;
  }
  StatsCounters counters;
  GhdEngine engine(graph, k, options_, counters);
  Fragment fragment;
  ExtendedSubhypergraph full = ExtendedSubhypergraph::FullGraph(graph);
  util::DynamicBitset empty_conn(graph.num_vertices());
  GhdStatus status = engine.Decompose(full, empty_conn, 0, fragment, -1);
  result.stats = counters.Snapshot();
  result.stats.seconds = timer.ElapsedSeconds();
  switch (status) {
    case GhdStatus::kStopped:
      result.outcome = Outcome::kCancelled;
      break;
    case GhdStatus::kNotFound:
      result.outcome = Outcome::kNo;  // for this incomplete search space
      break;
    case GhdStatus::kFound: {
      result.outcome = Outcome::kYes;
      result.decomposition = fragment.ToDecomposition();
      if (options_.validate_result) {
        Validation validation = ValidateGhd(graph, *result.decomposition);
        if (!validation.ok || result.decomposition->Width() > k) {
          result.outcome = Outcome::kError;
          result.decomposition.reset();
        }
      }
      break;
    }
  }
  return result;
}

}  // namespace htd
