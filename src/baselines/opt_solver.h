// OptimalSolver — stand-in for HtdLEO (Schidler & Szeider 2021).
//
// HtdLEO encodes HD computation as an SMT instance and asks the solver for a
// decomposition of *optimal* width directly: it takes no width parameter, is
// single-threaded, and trades memory (solver state) for steadiness. That
// closed SMT pipeline is not reproducible offline, so per DESIGN.md §4 we
// substitute an exact optimal-width solver with the same interface and the
// same performance profile:
//
//  * no width parameter — returns the optimal width and a proof-by-search
//    that every smaller width fails;
//  * alpha-acyclicity (GYO) fast path: hw = 1 instances solved immediately,
//    with the HD read off the join tree;
//  * otherwise iterative deepening k = 2, 3, ... over a complete *strictly
//    sequential* search. The search engine is the balanced-separator one
//    with an aggressive det-k switch (threshold below the headline hybrid's),
//    i.e. the strongest single-core configuration in this repository — the
//    role HtdLEO plays in the paper's tables: a powerful exact solver whose
//    only structural handicap against log-k-decomp is that its pipeline
//    cannot use additional cores.
//
// Everything the evaluation compares — single-core exactness, steadiness,
// a solved-set that dominates det-k-decomp's on mid-size instances, and no
// benefit from extra cores — is preserved. What is necessarily lost without
// an SMT stack is clause learning; see DESIGN.md §4 and EXPERIMENTS.md.
#pragma once

#include "core/solver.h"

namespace htd {

class OptimalSolver {
 public:
  explicit OptimalSolver(SolveOptions options = {});

  /// Computes hw(H) exactly (outcome kYes) with a witness HD, or kCancelled
  /// on timeout. `max_k` caps the search (instances of larger width report
  /// kNo, mirroring the paper's width-10 experiment cap).
  OptimalRun FindOptimal(const Hypergraph& graph, int max_k = 64);

  std::string name() const { return "opt-exact (HtdLEO stand-in)"; }

 private:
  SolveOptions options_;
};

}  // namespace htd
