#include "baselines/det_k_decomp.h"

#include <algorithm>
#include <optional>

#include "core/search_steps.h"
#include "decomp/validation.h"
#include "service/subproblem_store.h"
#include "util/combinations.h"
#include "util/timer.h"

namespace htd {

DetKEngine::DetKEngine(const Hypergraph& graph, SpecialEdgeRegistry& registry, int k,
                       const SolveOptions& options, StatsCounters& stats)
    : graph_(graph), registry_(registry), k_(k), options_(options), stats_(stats) {
  HTD_CHECK_GE(k, 1);
}

SearchOutcome DetKEngine::Decompose(const ExtendedSubhypergraph& comp,
                                    const util::DynamicBitset& conn,
                                    const util::DynamicBitset& allowed, int depth) {
  stats_.recursive_calls.fetch_add(1, std::memory_order_relaxed);
  stats_.UpdateMaxDepth(depth);
  if (ShouldStop()) return SearchOutcome::Stopped();

  const util::DynamicBitset vertices = VerticesOf(graph_, registry_, comp);

  // Base case: few enough edges, no special edges -> one node covers all.
  if (comp.edge_count <= k_ && comp.specials.empty()) {
    Fragment fragment;
    std::vector<int> lambda = comp.edges.ToVector();
    if (lambda.empty()) {
      // Empty subproblem (only possible for an empty input hypergraph).
      return SearchOutcome::Found(Fragment());
    }
    int root = fragment.AddNode(std::move(lambda), vertices);
    fragment.SetRoot(root);
    return SearchOutcome::Found(std::move(fragment));
  }
  // Base case: a single special edge becomes a leaf.
  if (comp.edge_count == 0 && comp.specials.size() == 1) {
    Fragment fragment;
    int special = comp.specials[0];
    int root = fragment.AddSpecialLeaf(special, registry_.vertices(special));
    fragment.SetRoot(root);
    return SearchOutcome::Found(std::move(fragment));
  }
  // Negative base case (App. C): no edges left means no λ-label can make
  // progress, so two or more special edges cannot be separated.
  if (comp.edge_count == 0) return SearchOutcome::NotFound();

  CacheKey key{comp.edges, comp.specials, conn, allowed};
  if (CacheLookup(key)) {
    stats_.cache_hits.fetch_add(1, std::memory_order_relaxed);
    return SearchOutcome::NotFound();
  }

  // Cross-instance subproblem store: det-k decides the same predicate as
  // log-k ("∃ width-≤k fragment of ⟨comp, conn⟩ with λ ⊆ allowed"), so the
  // two solvers share entries in both directions.
  service::SubproblemStore* store = options_.subproblem_store;
  std::optional<service::SubproblemStore::Key> store_key;
  if (store != nullptr && store->ShouldProbe(comp)) {
    store_key = service::SubproblemStore::MakeKey(graph_, registry_, comp, conn,
                                                  allowed, k_);
    Fragment reusable;
    switch (store->Lookup(*store_key, graph_, &reusable)) {
      case service::SubproblemStore::Hit::kNegative:
        stats_.store_negative_hits.fetch_add(1, std::memory_order_relaxed);
        // Mirror into the per-run cache: revisits of this exact subproblem
        // then answer locally instead of re-canonicalising.
        CacheInsert(std::move(key));
        return SearchOutcome::NotFound();
      case service::SubproblemStore::Hit::kPositive:
        stats_.store_positive_hits.fetch_add(1, std::memory_order_relaxed);
        return SearchOutcome::Found(std::move(reusable));
      case service::SubproblemStore::Hit::kMiss:
        break;
    }
  }

  // Candidate λ-edges: allowed edges touching the component, with the
  // component's own edges first. Ordered-first-element enumeration then
  // enforces "at least one new edge in λ" for free.
  std::vector<int> candidates;
  allowed.ForEach([&](int e) {
    if (comp.edges.Test(e)) candidates.push_back(e);
  });
  const int num_new = static_cast<int>(candidates.size());
  allowed.ForEach([&](int e) {
    if (!comp.edges.Test(e) && graph_.edge_vertices(e).Intersects(vertices)) {
      candidates.push_back(e);
    }
  });
  const int n = static_cast<int>(candidates.size());

  std::vector<int> lambda;
  for (const util::SubsetChunk& chunk : util::MakeSubsetChunks(n, k_, num_new)) {
    util::FixedFirstEnumerator enumerator(n, chunk.size, chunk.first);
    while (enumerator.Next()) {
      if (ShouldStop()) return SearchOutcome::Stopped();
      stats_.separators_tried.fetch_add(1, std::memory_order_relaxed);
      AddSearchStep();
      lambda.clear();
      for (int idx : enumerator.indices()) lambda.push_back(candidates[idx]);

      util::DynamicBitset lambda_union = graph_.UnionOfEdges(lambda);
      if (!conn.IsSubsetOf(lambda_union)) continue;
      // Minimal χ (normal-form condition 3): vertices of λ inside the
      // component. Progress is guaranteed: λ contains a component edge e, and
      // e ⊆ ⋃λ ∩ V(comp) = χ.
      util::DynamicBitset chi = lambda_union & vertices;

      ComponentSplit split = SplitComponents(graph_, registry_, comp, chi);
      std::vector<Fragment> child_fragments;
      child_fragments.reserve(split.components.size());
      bool failed = false;
      for (size_t i = 0; i < split.components.size(); ++i) {
        util::DynamicBitset child_conn = split.component_vertices[i] & chi;
        SearchOutcome child =
            Decompose(split.components[i], child_conn, allowed, depth + 1);
        if (child.status == SearchStatus::kStopped) return child;
        if (child.status == SearchStatus::kNotFound) {
          failed = true;
          break;
        }
        child_fragments.push_back(std::move(child.fragment));
      }
      if (failed) continue;

      Fragment fragment;
      int root = fragment.AddNode(lambda, chi);
      fragment.SetRoot(root);
      for (int s : split.covered.specials) {
        int leaf = fragment.AddSpecialLeaf(s, registry_.vertices(s));
        fragment.AddChild(root, leaf);
      }
      for (const Fragment& child : child_fragments) {
        fragment.Graft(child, root);
      }
      if (store_key.has_value()) {
        store->InsertPositive(*store_key, graph_, fragment);
      }
      return SearchOutcome::Found(std::move(fragment));
    }
  }

  CacheInsert(std::move(key));
  if (store_key.has_value()) store->InsertNegative(*store_key);
  return SearchOutcome::NotFound();
}

SolveResult DetKDecomp::Solve(const Hypergraph& graph, int k) {
  util::WallTimer timer;
  SolveResult result;
  if (graph.num_edges() == 0) {
    // The empty hypergraph has the empty HD (width 0).
    result.outcome = Outcome::kYes;
    result.decomposition = Decomposition();
    result.stats.seconds = timer.ElapsedSeconds();
    return result;
  }
  StatsCounters counters;
  SpecialEdgeRegistry registry(graph.num_vertices());
  DetKEngine engine(graph, registry, k, options_, counters);

  ExtendedSubhypergraph full = ExtendedSubhypergraph::FullGraph(graph);
  util::DynamicBitset empty_conn(graph.num_vertices());
  SearchOutcome outcome = engine.Decompose(full, empty_conn, graph.AllEdges(), 0);

  result.stats = counters.Snapshot();
  result.stats.seconds = timer.ElapsedSeconds();
  switch (outcome.status) {
    case SearchStatus::kStopped:
      result.outcome = Outcome::kCancelled;
      break;
    case SearchStatus::kNotFound:
      result.outcome = Outcome::kNo;
      break;
    case SearchStatus::kFound: {
      result.outcome = Outcome::kYes;
      result.decomposition = outcome.fragment.ToDecomposition();
      if (options_.validate_result) {
        Validation validation = ValidateHdWithWidth(graph, *result.decomposition, k);
        if (!validation.ok) {
          result.outcome = Outcome::kError;
          result.decomposition.reset();
        }
      }
      break;
    }
  }
  return result;
}

}  // namespace htd
