// det-k-decomp (Gottlob & Samer 2008), re-implemented over extended
// subhypergraphs.
//
// The classic top-down HD algorithm: for the current component, guess a
// λ-label covering the interface Conn, fix the minimal χ = ⋃λ ∩ V(comp),
// recurse into the [χ]-components. Its defining implementation trait — the
// one the paper calls out as the obstacle to parallelisation — is extensive
// caching of failed (component, Conn) subproblems; we reproduce that with a
// negative cache plus hit counters.
//
// Unlike the original, this version handles *extended* subhypergraphs
// (special edges become leaf children once covered), which is exactly the
// extension the paper's hybrid strategy requires (§5.2: "our own
// implementation of det-k-decomp, extended to handle extended subhypergraphs
// correctly").
#pragma once

#include <mutex>
#include <unordered_set>
#include <vector>

#include "core/search_types.h"
#include "core/solver.h"
#include "decomp/components.h"
#include "decomp/extended_subhypergraph.h"
#include "decomp/special_edges.h"

namespace htd {

/// Reusable recursive engine. One instance per (graph, k) run; the hybrid
/// embeds one next to the log-k engine and forwards small subproblems.
class DetKEngine {
 public:
  DetKEngine(const Hypergraph& graph, SpecialEdgeRegistry& registry, int k,
             const SolveOptions& options, StatsCounters& stats);

  /// Searches for an HD-fragment of width ≤ k of ⟨comp, conn⟩ using only
  /// λ-edges from `allowed`.
  SearchOutcome Decompose(const ExtendedSubhypergraph& comp,
                          const util::DynamicBitset& conn,
                          const util::DynamicBitset& allowed, int depth);

 private:
  struct CacheKey {
    util::DynamicBitset edges;
    std::vector<int> specials;
    util::DynamicBitset conn;
    util::DynamicBitset allowed;

    bool operator==(const CacheKey& other) const {
      return edges == other.edges && specials == other.specials &&
             conn == other.conn && allowed == other.allowed;
    }
  };
  struct CacheKeyHash {
    size_t operator()(const CacheKey& key) const {
      size_t h = key.edges.Hash() * 31 + key.conn.Hash();
      for (int s : key.specials) h = h * 1099511628211ull + s;
      return h * 31 + key.allowed.Hash();
    }
  };

  bool ShouldStop() const {
    return options_.cancel != nullptr && options_.cancel->ShouldStop();
  }

  bool CacheLookup(const CacheKey& key) {
    std::lock_guard<std::mutex> lock(cache_mutex_);
    return negative_cache_.count(key) > 0;
  }
  void CacheInsert(CacheKey key) {
    std::lock_guard<std::mutex> lock(cache_mutex_);
    negative_cache_.insert(std::move(key));
  }

  const Hypergraph& graph_;
  SpecialEdgeRegistry& registry_;
  const int k_;
  const SolveOptions& options_;
  StatsCounters& stats_;
  // The hybrid invokes this engine from parallel log-k workers; the cache is
  // the only shared mutable state, guarded by cache_mutex_.
  std::mutex cache_mutex_;
  std::unordered_set<CacheKey, CacheKeyHash> negative_cache_;
};

/// HdSolver façade over DetKEngine, solving whole hypergraphs.
class DetKDecomp : public HdSolver {
 public:
  explicit DetKDecomp(SolveOptions options = {}) : options_(std::move(options)) {}

  SolveResult Solve(const Hypergraph& graph, int k) override;
  std::string name() const override { return "det-k-decomp"; }

 private:
  SolveOptions options_;
};

}  // namespace htd
