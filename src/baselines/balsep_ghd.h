// Balanced-separator GHD solver — stand-in for BalancedGo (Gottlob, Okulmus
// & Pichler, IJCAI 2020).
//
// BalancedGo computes *generalized* hypertree decompositions: no special
// condition, unrooted trees. Its core idea — recurse on balanced separators
// so every subproblem halves — is the same one log-k-decomp adapts to HDs.
// We implement the rooted variant of that recursion: pick λ (≤ k edges) such
// that every [λ]-component of the current component has at most half its
// size and ⋃λ covers the interface Conn; set χ = ⋃λ ∩ V(comp) and recurse.
//
// Guarantees: every returned decomposition is a valid GHD of width ≤ k
// (ValidateGhd), and the recursion depth is logarithmic. Like BalancedGo
// without its full sub-edge machinery, the solver is *incomplete* for exact
// ghw (it can miss GHDs whose bags are strict subsets of ⋃λ), which mirrors
// the empirical finding the paper reports in §5.2: the extra generality of
// GHDs buys nothing on HyperBench (ghw found is never below hw), while the
// GHD search is more expensive. See DESIGN.md §4.
#pragma once

#include "core/solver.h"

namespace htd {

class BalSepGhd : public HdSolver {
 public:
  explicit BalSepGhd(SolveOptions options = {}) : options_(std::move(options)) {}

  /// Searches for a GHD of width ≤ k (sound; incomplete for exact ghw).
  SolveResult Solve(const Hypergraph& graph, int k) override;
  std::string name() const override { return "balsep-ghd (BalancedGo stand-in)"; }

 private:
  SolveOptions options_;
};

}  // namespace htd
