#include "baselines/opt_solver.h"

#include <functional>
#include <vector>

#include "core/log_k_decomp.h"
#include "decomp/validation.h"
#include "hypergraph/gyo.h"
#include "util/timer.h"

namespace htd {
namespace {

// Builds the width-1 HD induced by a join tree: node u has λ = {edge u},
// χ = vertices(edge u); tree shape follows the join-tree parents.
Decomposition JoinTreeToHd(const Hypergraph& graph, const JoinTree& tree) {
  Decomposition decomp;
  int m = graph.num_edges();
  // The join tree's parent[] may form a forest over absorbed edges; pick the
  // unique edge without parent as root and attach any stray roots below it
  // (their vertex sets are subsets of some other edge, so connectedness and
  // the special condition are preserved by attaching them to that edge).
  std::vector<std::vector<int>> children(m);
  int root = -1;
  for (int e = 0; e < m; ++e) {
    if (tree.parent[e] == -1) {
      root = e;
    } else {
      children[tree.parent[e]].push_back(e);
    }
  }
  HTD_CHECK_GE(root, 0);
  std::vector<int> node_of(m, -1);
  std::function<void(int, int)> visit = [&](int e, int parent_node) {
    node_of[e] = decomp.AddNode({e}, graph.edge_vertices(e), parent_node);
    for (int c : children[e]) visit(c, node_of[e]);
  };
  visit(root, -1);
  // Any second GYO root (possible when the reduction ends with an edge whose
  // set became empty) hangs under the main root.
  for (int e = 0; e < m; ++e) {
    if (node_of[e] == -1 && tree.parent[e] == -1) {
      visit(e, node_of[root]);
    }
  }
  return decomp;
}

}  // namespace

OptimalSolver::OptimalSolver(SolveOptions options) : options_(std::move(options)) {
  // HtdLEO profile: strictly sequential, but the strongest single-core
  // search available (balanced separators with an eager det-k switch).
  options_.num_threads = 1;
  options_.hybrid_metric = HybridMetric::kWeightedCount;
  options_.hybrid_threshold = 60.0;
}

OptimalRun OptimalSolver::FindOptimal(const Hypergraph& graph, int max_k) {
  util::WallTimer timer;
  OptimalRun run;
  if (graph.num_edges() == 0) {
    run.outcome = Outcome::kYes;
    run.width = 0;
    run.decomposition = Decomposition();
    run.seconds = timer.ElapsedSeconds();
    return run;
  }
  // Width-1 fast path: alpha-acyclicity.
  if (auto tree = BuildJoinTree(graph); tree.has_value()) {
    run.outcome = Outcome::kYes;
    run.width = 1;
    run.decomposition = JoinTreeToHd(graph, *tree);
    run.seconds = timer.ElapsedSeconds();
    return run;
  }
  // Iterative deepening from 2 (acyclicity just failed, so hw >= 2).
  LogKDecomp solver(options_);
  for (int k = 2; k <= max_k; ++k) {
    SolveResult result = solver.Solve(graph, k);
    run.stats.separators_tried += result.stats.separators_tried;
    run.stats.recursive_calls += result.stats.recursive_calls;
    run.stats.cache_hits += result.stats.cache_hits;
    if (result.outcome == Outcome::kYes) {
      run.outcome = Outcome::kYes;
      run.width = k;
      run.decomposition = std::move(result.decomposition);
      run.seconds = timer.ElapsedSeconds();
      return run;
    }
    if (result.outcome != Outcome::kNo) {
      run.outcome = result.outcome;
      run.seconds = timer.ElapsedSeconds();
      return run;
    }
  }
  run.outcome = Outcome::kNo;
  run.seconds = timer.ElapsedSeconds();
  return run;
}

}  // namespace htd
