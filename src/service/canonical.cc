#include "service/canonical.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <utility>

#include "util/hash.h"
#include "util/logging.h"

namespace htd::service {

namespace {

using util::HashCombine;

/// Replaces arbitrary 64-bit colour hashes by dense ranks in [0, #distinct).
/// Ranking by sorted hash value keeps the mapping independent of vertex and
/// edge numbering, which is what makes each refinement round invariant.
int Compress(std::vector<uint64_t>& colors) {
  std::vector<uint64_t> sorted(colors);
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  for (auto& c : colors) {
    c = static_cast<uint64_t>(
        std::lower_bound(sorted.begin(), sorted.end(), c) - sorted.begin());
  }
  return static_cast<int>(sorted.size());
}

struct Refinement {
  std::vector<uint64_t> vcolor;  // dense vertex colours
  std::vector<uint64_t> ecolor;  // dense edge colours
  int num_vertex_classes = 0;
  int num_edge_classes = 0;
};

/// One-sided update: recolour `out` from its own colour plus the sorted
/// multiset of neighbour colours (edge ➞ member vertices, vertex ➞ incident
/// edges).
template <typename NeighborsFn>
void RecolorSide(std::vector<uint64_t>& out, const std::vector<uint64_t>& other,
                 NeighborsFn&& neighbors, uint64_t side_seed) {
  std::vector<uint64_t> next(out.size());
  std::vector<uint64_t> adj;
  for (size_t i = 0; i < out.size(); ++i) {
    adj.clear();
    neighbors(static_cast<int>(i), adj, other);
    std::sort(adj.begin(), adj.end());
    uint64_t h = HashCombine(side_seed, out[i]);
    for (uint64_t c : adj) h = HashCombine(h, c);
    h = HashCombine(h, adj.size());
    next[i] = h;
  }
  out = std::move(next);
}

/// Runs colour refinement to a fixed point. Colours are invariant under any
/// renaming of vertices or reordering of edges.
Refinement Refine(const Hypergraph& graph, std::vector<uint64_t> vcolor,
                  std::vector<uint64_t> ecolor) {
  const int n = graph.num_vertices();
  const int m = graph.num_edges();
  Refinement r;
  r.vcolor = std::move(vcolor);
  r.ecolor = std::move(ecolor);
  r.num_vertex_classes = Compress(r.vcolor);
  r.num_edge_classes = Compress(r.ecolor);

  auto edge_members = [&graph](int e, std::vector<uint64_t>& adj,
                               const std::vector<uint64_t>& vc) {
    for (int v : graph.edge_vertex_list(e)) adj.push_back(vc[v]);
  };
  auto vertex_edges = [&graph](int v, std::vector<uint64_t>& adj,
                               const std::vector<uint64_t>& ec) {
    for (int e : graph.edges_of_vertex(v)) adj.push_back(ec[e]);
  };

  // Each productive round strictly grows a class count; n + m bounds rounds.
  for (int round = 0; round < n + m + 1; ++round) {
    RecolorSide(r.ecolor, r.vcolor, edge_members, /*side_seed=*/0xe5);
    int edge_classes = Compress(r.ecolor);
    RecolorSide(r.vcolor, r.ecolor, vertex_edges, /*side_seed=*/0x5e);
    int vertex_classes = Compress(r.vcolor);
    if (edge_classes == r.num_edge_classes &&
        vertex_classes == r.num_vertex_classes) {
      break;
    }
    r.num_edge_classes = edge_classes;
    r.num_vertex_classes = vertex_classes;
  }
  return r;
}

}  // namespace

std::string Fingerprint::ToHex() const {
  char buf[33];
  std::snprintf(buf, sizeof(buf), "%016llx%016llx",
                static_cast<unsigned long long>(hi),
                static_cast<unsigned long long>(lo));
  return std::string(buf);
}

CanonicalForm ComputeCanonicalForm(const Hypergraph& graph) {
  const int n = graph.num_vertices();
  const int m = graph.num_edges();

  // Seed colours: vertex degree / edge size (the degree/edge-size refinement).
  std::vector<uint64_t> vcolor(n), ecolor(m);
  for (int v = 0; v < n; ++v) {
    vcolor[v] = static_cast<uint64_t>(graph.edges_of_vertex(v).size());
  }
  for (int e = 0; e < m; ++e) {
    ecolor[e] = static_cast<uint64_t>(graph.edge_vertex_list(e).size());
  }
  Refinement r = Refine(graph, std::move(vcolor), std::move(ecolor));

  // Individualise until the vertex partition is discrete: give one member of
  // the first (lowest-ranked) still-tied colour class a fresh colour and
  // re-refine. The member choice (lowest original id) only matters for
  // classes whose members are not automorphic; see the caveat in the header.
  while (r.num_vertex_classes < n) {
    std::vector<int> class_size(r.num_vertex_classes, 0);
    for (int v = 0; v < n; ++v) class_size[r.vcolor[v]]++;
    int target_class = -1;
    for (int c = 0; c < r.num_vertex_classes; ++c) {
      if (class_size[c] > 1) {
        target_class = c;
        break;
      }
    }
    HTD_CHECK(target_class >= 0);
    int chosen = -1;
    for (int v = 0; v < n; ++v) {
      if (static_cast<int>(r.vcolor[v]) == target_class) {
        chosen = v;
        break;
      }
    }
    r.vcolor[chosen] = static_cast<uint64_t>(r.num_vertex_classes);
    r = Refine(graph, std::move(r.vcolor), std::move(r.ecolor));
  }

  // Discrete partition: vcolor IS the canonical vertex id.
  CanonicalForm form;
  form.num_vertices = n;
  form.num_edges = m;
  form.edges.reserve(m);
  for (int e = 0; e < m; ++e) {
    std::vector<int> edge;
    edge.reserve(graph.edge_vertex_list(e).size());
    for (int v : graph.edge_vertex_list(e)) {
      edge.push_back(static_cast<int>(r.vcolor[v]));
    }
    std::sort(edge.begin(), edge.end());
    form.edges.push_back(std::move(edge));
  }
  std::sort(form.edges.begin(), form.edges.end());

  // Two independently seeded mixes over (n, m, canonical edges) = 128 bits.
  uint64_t h1 = 0x6c6f676b64656331ULL;  // "logkdec1"
  uint64_t h2 = 0x6c6f676b64656332ULL;  // "logkdec2"
  auto absorb = [&](uint64_t value) {
    h1 = HashCombine(h1, value);
    h2 = HashCombine(h2, ~value);
  };
  absorb(static_cast<uint64_t>(n));
  absorb(static_cast<uint64_t>(m));
  for (const auto& edge : form.edges) {
    absorb(edge.size());
    for (int v : edge) absorb(static_cast<uint64_t>(v));
  }
  form.fingerprint = Fingerprint{h1, h2};
  return form;
}

Fingerprint CanonicalFingerprint(const Hypergraph& graph) {
  return ComputeCanonicalForm(graph).fingerprint;
}

std::string CanonicalString(const CanonicalForm& form) {
  std::string out = std::to_string(form.num_vertices) + " " +
                    std::to_string(form.num_edges);
  for (const auto& edge : form.edges) {
    out += " |";
    for (int v : edge) {
      out += " " + std::to_string(v);
    }
  }
  return out;
}

}  // namespace htd::service
