#include "service/canonical.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <utility>

#include "util/hash.h"
#include "util/logging.h"

namespace htd::service {

namespace {

using util::HashCombine;

/// Replaces arbitrary 64-bit colour hashes by dense ranks in [0, #distinct).
/// Ranking by sorted hash value keeps the mapping independent of vertex and
/// edge numbering, which is what makes each refinement round invariant.
int Compress(std::vector<uint64_t>& colors) {
  std::vector<uint64_t> sorted(colors);
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  for (auto& c : colors) {
    c = static_cast<uint64_t>(
        std::lower_bound(sorted.begin(), sorted.end(), c) - sorted.begin());
  }
  return static_cast<int>(sorted.size());
}

struct Refinement {
  std::vector<uint64_t> vcolor;  // dense vertex colours
  std::vector<uint64_t> ecolor;  // dense edge colours
  int num_vertex_classes = 0;
  int num_edge_classes = 0;
};

/// One-sided update: recolour `out` from its own colour plus the sorted
/// multiset of neighbour colours (edge ➞ member vertices, vertex ➞ incident
/// edges).
template <typename NeighborsFn>
void RecolorSide(std::vector<uint64_t>& out, const std::vector<uint64_t>& other,
                 NeighborsFn&& neighbors, uint64_t side_seed) {
  std::vector<uint64_t> next(out.size());
  std::vector<uint64_t> adj;
  for (size_t i = 0; i < out.size(); ++i) {
    adj.clear();
    neighbors(static_cast<int>(i), adj, other);
    std::sort(adj.begin(), adj.end());
    uint64_t h = HashCombine(side_seed, out[i]);
    for (uint64_t c : adj) h = HashCombine(h, c);
    h = HashCombine(h, adj.size());
    next[i] = h;
  }
  out = std::move(next);
}

/// Runs colour refinement to a fixed point. Colours are invariant under any
/// renaming of vertices or reordering of edges.
Refinement Refine(const Hypergraph& graph, std::vector<uint64_t> vcolor,
                  std::vector<uint64_t> ecolor) {
  const int n = graph.num_vertices();
  const int m = graph.num_edges();
  Refinement r;
  r.vcolor = std::move(vcolor);
  r.ecolor = std::move(ecolor);
  r.num_vertex_classes = Compress(r.vcolor);
  r.num_edge_classes = Compress(r.ecolor);

  auto edge_members = [&graph](int e, std::vector<uint64_t>& adj,
                               const std::vector<uint64_t>& vc) {
    for (int v : graph.edge_vertex_list(e)) adj.push_back(vc[v]);
  };
  auto vertex_edges = [&graph](int v, std::vector<uint64_t>& adj,
                               const std::vector<uint64_t>& ec) {
    for (int e : graph.edges_of_vertex(v)) adj.push_back(ec[e]);
  };

  // Each productive round strictly grows a class count; n + m bounds rounds.
  for (int round = 0; round < n + m + 1; ++round) {
    RecolorSide(r.ecolor, r.vcolor, edge_members, /*side_seed=*/0xe5);
    int edge_classes = Compress(r.ecolor);
    RecolorSide(r.vcolor, r.ecolor, vertex_edges, /*side_seed=*/0x5e);
    int vertex_classes = Compress(r.vcolor);
    if (edge_classes == r.num_edge_classes &&
        vertex_classes == r.num_vertex_classes) {
      break;
    }
    r.num_edge_classes = edge_classes;
    r.num_vertex_classes = vertex_classes;
  }
  return r;
}

/// Refines from the given seed colours, then individualises until the vertex
/// partition is discrete. The returned vector is the canonical vertex id of
/// each vertex. The member choice inside a tied class (lowest original id)
/// only matters for classes whose members are not automorphic; see the
/// header caveat.
std::vector<int> DiscreteVertexIds(const Hypergraph& graph,
                                   std::vector<uint64_t> vseed,
                                   std::vector<uint64_t> eseed) {
  const int n = graph.num_vertices();
  Refinement r = Refine(graph, std::move(vseed), std::move(eseed));
  while (r.num_vertex_classes < n) {
    std::vector<int> class_size(r.num_vertex_classes, 0);
    for (int v = 0; v < n; ++v) class_size[r.vcolor[v]]++;
    int target_class = -1;
    for (int c = 0; c < r.num_vertex_classes; ++c) {
      if (class_size[c] > 1) {
        target_class = c;
        break;
      }
    }
    HTD_CHECK(target_class >= 0);
    int chosen = -1;
    for (int v = 0; v < n; ++v) {
      if (static_cast<int>(r.vcolor[v]) == target_class) {
        chosen = v;
        break;
      }
    }
    r.vcolor[chosen] = static_cast<uint64_t>(r.num_vertex_classes);
    r = Refine(graph, std::move(r.vcolor), std::move(r.ecolor));
  }
  std::vector<int> ids(n);
  for (int v = 0; v < n; ++v) ids[v] = static_cast<int>(r.vcolor[v]);
  return ids;
}

}  // namespace

std::string Fingerprint::ToHex() const {
  char buf[33];
  std::snprintf(buf, sizeof(buf), "%016llx%016llx",
                static_cast<unsigned long long>(hi),
                static_cast<unsigned long long>(lo));
  return std::string(buf);
}

bool Fingerprint::FromHex(std::string_view text, Fingerprint* out) {
  if (text.size() != 32) return false;
  uint64_t words[2] = {0, 0};
  for (int w = 0; w < 2; ++w) {
    for (int i = 0; i < 16; ++i) {
      char c = text[w * 16 + i];
      uint64_t digit;
      if (c >= '0' && c <= '9') {
        digit = static_cast<uint64_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        digit = static_cast<uint64_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        digit = static_cast<uint64_t>(c - 'A' + 10);
      } else {
        return false;
      }
      words[w] = (words[w] << 4) | digit;
    }
  }
  out->hi = words[0];
  out->lo = words[1];
  return true;
}

CanonicalForm ComputeCanonicalForm(const Hypergraph& graph) {
  const int n = graph.num_vertices();
  const int m = graph.num_edges();

  // Seed colours: vertex degree / edge size (the degree/edge-size refinement).
  std::vector<uint64_t> vcolor(n), ecolor(m);
  for (int v = 0; v < n; ++v) {
    vcolor[v] = static_cast<uint64_t>(graph.edges_of_vertex(v).size());
  }
  for (int e = 0; e < m; ++e) {
    ecolor[e] = static_cast<uint64_t>(graph.edge_vertex_list(e).size());
  }
  // Individualisation makes the partition discrete: vcolor IS the canonical
  // vertex id.
  std::vector<int> ids = DiscreteVertexIds(graph, std::move(vcolor), std::move(ecolor));

  CanonicalForm form;
  form.num_vertices = n;
  form.num_edges = m;
  form.edges.reserve(m);
  for (int e = 0; e < m; ++e) {
    std::vector<int> edge;
    edge.reserve(graph.edge_vertex_list(e).size());
    for (int v : graph.edge_vertex_list(e)) {
      edge.push_back(ids[v]);
    }
    std::sort(edge.begin(), edge.end());
    form.edges.push_back(std::move(edge));
  }
  std::sort(form.edges.begin(), form.edges.end());

  // Two independently seeded mixes over (n, m, canonical edges) = 128 bits.
  uint64_t h1 = 0x6c6f676b64656331ULL;  // "logkdec1"
  uint64_t h2 = 0x6c6f676b64656332ULL;  // "logkdec2"
  auto absorb = [&](uint64_t value) {
    h1 = HashCombine(h1, value);
    h2 = HashCombine(h2, ~value);
  };
  absorb(static_cast<uint64_t>(n));
  absorb(static_cast<uint64_t>(m));
  for (const auto& edge : form.edges) {
    absorb(edge.size());
    for (int v : edge) absorb(static_cast<uint64_t>(v));
  }
  form.fingerprint = Fingerprint{h1, h2};
  return form;
}

Fingerprint CanonicalFingerprint(const Hypergraph& graph) {
  return ComputeCanonicalForm(graph).fingerprint;
}

SubproblemCanonicalForm FingerprintSubhypergraph(const Hypergraph& graph,
                                                 const SpecialEdgeRegistry& registry,
                                                 const ExtendedSubhypergraph& comp,
                                                 const util::DynamicBitset& conn) {
  SubproblemCanonicalForm form;

  // Dense-renumber V(H') = (⋃E') ∪ (⋃Sp) into a local universe. The rank
  // array is filled with local ids first and rewritten to canonical ids
  // after refinement, so only one base-universe-sized array is built. Its
  // O(|V(H)|) zero-fill per probe is a deliberate trade-off: dense lookups
  // beat hashing at corpus scale (revisit for huge, sparse instances).
  const util::DynamicBitset base_vertices = VerticesOf(graph, registry, comp);
  form.base_vertex_rank.assign(graph.num_vertices(), -1);
  std::vector<int>& local_of_base = form.base_vertex_rank;
  std::vector<int> base_of_local;
  base_vertices.ForEach([&](int v) {
    local_of_base[v] = static_cast<int>(base_of_local.size());
    base_of_local.push_back(v);
  });
  const int n = static_cast<int>(base_of_local.size());
  form.num_vertices = n;

  // Build the local incidence structure: component edges first, then special
  // edges (a special edge is its interface vertex set).
  Hypergraph local;
  for (int i = 0; i < n; ++i) local.AddVertex();
  std::vector<int> local_edge_source;  // local edge index → base edge / special id
  comp.edges.ForEach([&](int e) {
    std::vector<int> members;
    for (int v : graph.edge_vertex_list(e)) {
      members.push_back(local_of_base[v]);
    }
    HTD_CHECK(local.AddEdge(members).ok());
    local_edge_source.push_back(e);
  });
  const int num_component_edges = static_cast<int>(local_edge_source.size());
  for (int s : comp.specials) {
    std::vector<int> members;
    registry.vertices(s).ForEach(
        [&](int v) { members.push_back(local_of_base[v]); });
    HTD_CHECK(local.AddEdge(members).ok());
    local_edge_source.push_back(s);
  }
  const int m = local.num_edges();

  // Seed colours: (degree, Conn-membership) per vertex, (size, is-special)
  // per edge. Connector vertices outside V(H') cannot occur in solver calls
  // but are ignored if present (the rank filter drops them).
  std::vector<uint64_t> vseed(n), eseed(m);
  for (int v = 0; v < n; ++v) {
    const bool in_conn = conn.Test(base_of_local[v]);
    vseed[v] = HashCombine(static_cast<uint64_t>(local.edges_of_vertex(v).size()),
                           in_conn ? 0xc0 : 0x0c);
  }
  for (int e = 0; e < m; ++e) {
    const bool is_special = e >= num_component_edges;
    eseed[e] = HashCombine(static_cast<uint64_t>(local.edge_vertex_list(e).size()),
                           is_special ? 0x5b : 0xb5);
  }
  std::vector<int> ids = DiscreteVertexIds(local, std::move(vseed), std::move(eseed));

  // Rewrite the rank array in place: local ids become canonical ids.
  form.canonical_vertices.assign(n, -1);
  for (int v = 0; v < n; ++v) {
    form.canonical_vertices[ids[v]] = base_of_local[v];
    form.base_vertex_rank[base_of_local[v]] = ids[v];
  }

  // Canonical edge order: (label, canonical content) ascending. Ties are
  // content-identical edges of one label — interchangeable, so the original
  // index breaks them.
  struct EdgeRecord {
    int label;  // 0 = component edge, 1 = special edge
    std::vector<int> members;
    int local_index;
  };
  std::vector<EdgeRecord> records;
  records.reserve(m);
  for (int e = 0; e < m; ++e) {
    EdgeRecord record;
    record.label = e >= num_component_edges ? 1 : 0;
    for (int v : local.edge_vertex_list(e)) record.members.push_back(ids[v]);
    std::sort(record.members.begin(), record.members.end());
    record.local_index = e;
    records.push_back(std::move(record));
  }
  std::sort(records.begin(), records.end(),
            [](const EdgeRecord& a, const EdgeRecord& b) {
              if (a.label != b.label) return a.label < b.label;
              if (a.members != b.members) return a.members < b.members;
              return a.local_index < b.local_index;
            });
  for (const EdgeRecord& record : records) {
    if (record.label == 1) {
      form.special_order.push_back(local_edge_source[record.local_index]);
    }
  }

  // Fingerprint: two independent mixes over (n, counts, canonical Conn,
  // labelled canonical edges). Conn is absorbed explicitly — the seed
  // colours influence canonical ids, but the edge lists alone need not pin
  // the connector down.
  uint64_t h1 = 0x73756270726f6231ULL;  // "subprob1"
  uint64_t h2 = 0x73756270726f6232ULL;  // "subprob2"
  auto absorb = [&](uint64_t value) {
    h1 = HashCombine(h1, value);
    h2 = HashCombine(h2, ~value);
  };
  absorb(static_cast<uint64_t>(n));
  absorb(static_cast<uint64_t>(num_component_edges));
  absorb(static_cast<uint64_t>(m - num_component_edges));
  std::vector<int> conn_ids;
  conn.ForEach([&](int v) {
    if (form.base_vertex_rank[v] >= 0) conn_ids.push_back(form.base_vertex_rank[v]);
  });
  std::sort(conn_ids.begin(), conn_ids.end());
  absorb(conn_ids.size());
  for (int c : conn_ids) absorb(static_cast<uint64_t>(c));
  for (const EdgeRecord& record : records) {
    absorb(static_cast<uint64_t>(record.label));
    absorb(record.members.size());
    for (int v : record.members) absorb(static_cast<uint64_t>(v));
  }
  form.fingerprint = Fingerprint{h1, h2};
  return form;
}

std::string CanonicalString(const CanonicalForm& form) {
  std::string out = std::to_string(form.num_vertices) + " " +
                    std::to_string(form.num_edges);
  for (const auto& edge : form.edges) {
    out += " |";
    for (int v : edge) {
      out += " " + std::to_string(v);
    }
  }
  return out;
}

}  // namespace htd::service
