#include "service/persistence.h"

#include <cstring>
#include <filesystem>
#include <fstream>
#include <string_view>
#include <utility>
#include <vector>

namespace htd::service {

namespace {

constexpr char kMagic[8] = {'H', 'T', 'D', 'S', 'N', 'A', 'P', '1'};
constexpr size_t kHeaderBytes = 8 + 4 + 8 + 8 + 8;

uint64_t Fnv1a64(std::string_view data) {
  uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : data) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

// ---------------------------------------------------------------------------
// Little-endian byte writer / bounds-checked reader over std::string.

class ByteWriter {
 public:
  void PutU8(uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void PutU32(uint32_t v) {
    for (int i = 0; i < 4; ++i) out_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
  void PutU64(uint64_t v) {
    for (int i = 0; i < 8; ++i) out_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
  void PutI32(int v) { PutU32(static_cast<uint32_t>(v)); }
  void PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }
  void PutDouble(double v) {
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    PutU64(bits);
  }
  void PutIntVec(const std::vector<int>& v) {
    PutU32(static_cast<uint32_t>(v.size()));
    for (int x : v) PutI32(x);
  }
  void PutTraces(const std::vector<std::vector<int>>& traces) {
    PutU32(static_cast<uint32_t>(traces.size()));
    for (const std::vector<int>& trace : traces) PutIntVec(trace);
  }

  std::string Take() { return std::move(out_); }

 private:
  std::string out_;
};

class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  bool GetU8(uint8_t* v) {
    if (pos_ + 1 > data_.size()) return false;
    *v = static_cast<uint8_t>(data_[pos_++]);
    return true;
  }
  bool GetU32(uint32_t* v) {
    if (pos_ + 4 > data_.size()) return false;
    *v = 0;
    for (int i = 0; i < 4; ++i) {
      *v |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + i])) << (8 * i);
    }
    pos_ += 4;
    return true;
  }
  bool GetU64(uint64_t* v) {
    if (pos_ + 8 > data_.size()) return false;
    *v = 0;
    for (int i = 0; i < 8; ++i) {
      *v |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i])) << (8 * i);
    }
    pos_ += 8;
    return true;
  }
  bool GetI32(int* v) {
    uint32_t raw;
    if (!GetU32(&raw)) return false;
    *v = static_cast<int>(raw);
    return true;
  }
  bool GetI64(int64_t* v) {
    uint64_t raw;
    if (!GetU64(&raw)) return false;
    *v = static_cast<int64_t>(raw);
    return true;
  }
  bool GetLong(long* v) {
    int64_t raw;
    if (!GetI64(&raw)) return false;
    *v = static_cast<long>(raw);
    return true;
  }
  bool GetDouble(double* v) {
    uint64_t bits;
    if (!GetU64(&bits)) return false;
    std::memcpy(v, &bits, sizeof(*v));
    return true;
  }
  bool GetIntVec(std::vector<int>* v) {
    uint32_t count;
    if (!GetU32(&count)) return false;
    v->clear();
    for (uint32_t i = 0; i < count; ++i) {
      int x;
      if (!GetI32(&x)) return false;
      v->push_back(x);
    }
    return true;
  }
  bool GetTraces(std::vector<std::vector<int>>* traces) {
    uint32_t count;
    if (!GetU32(&count)) return false;
    traces->clear();
    for (uint32_t i = 0; i < count; ++i) {
      std::vector<int> trace;
      if (!GetIntVec(&trace)) return false;
      traces->push_back(std::move(trace));
    }
    return true;
  }

  bool Done() const { return pos_ == data_.size(); }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// SolveResult (cache values).

void WriteSolveStats(ByteWriter& w, const SolveStats& stats) {
  w.PutI64(stats.separators_tried);
  w.PutI64(stats.recursive_calls);
  w.PutI32(stats.max_recursion_depth);
  w.PutI64(stats.cache_hits);
  w.PutI64(stats.detk_subproblems);
  w.PutI64(stats.store_negative_hits);
  w.PutI64(stats.store_positive_hits);
  w.PutI64(stats.work_total);
  w.PutI64(stats.work_parallel);
  w.PutDouble(stats.seconds);
}

bool ReadSolveStats(ByteReader& r, SolveStats* stats) {
  return r.GetLong(&stats->separators_tried) && r.GetLong(&stats->recursive_calls) &&
         r.GetI32(&stats->max_recursion_depth) && r.GetLong(&stats->cache_hits) &&
         r.GetLong(&stats->detk_subproblems) &&
         r.GetLong(&stats->store_negative_hits) &&
         r.GetLong(&stats->store_positive_hits) && r.GetLong(&stats->work_total) &&
         r.GetLong(&stats->work_parallel) && r.GetDouble(&stats->seconds);
}

void WriteDecomposition(ByteWriter& w, const Decomposition& decomp) {
  const int universe =
      decomp.num_nodes() > 0 ? decomp.node(0).chi.size_bits() : 0;
  w.PutI32(universe);
  w.PutU32(static_cast<uint32_t>(decomp.num_nodes()));
  // Decomposition::AddNode assigns ids in insertion order with parents
  // preceding children, so writing nodes in id order round-trips.
  for (int i = 0; i < decomp.num_nodes(); ++i) {
    const DecompNode& node = decomp.node(i);
    w.PutI32(node.parent);
    w.PutIntVec(node.lambda);
    w.PutIntVec(node.chi.ToVector());
  }
}

bool ReadDecomposition(ByteReader& r, std::optional<Decomposition>* out) {
  int universe;
  uint32_t num_nodes;
  if (!r.GetI32(&universe) || !r.GetU32(&num_nodes)) return false;
  if (universe < 0) return false;
  Decomposition decomp;
  int roots = 0;
  for (uint32_t i = 0; i < num_nodes; ++i) {
    int parent;
    std::vector<int> lambda, chi_list;
    if (!r.GetI32(&parent) || !r.GetIntVec(&lambda) || !r.GetIntVec(&chi_list)) {
      return false;
    }
    // Validate before AddNode: its invariants are CHECKs, and a corrupt
    // snapshot must produce a clean error, not a process abort.
    if (parent < -1 || parent >= static_cast<int>(i)) return false;
    if (parent == -1 && ++roots > 1) return false;
    util::DynamicBitset chi(universe);
    for (int v : chi_list) {
      if (v < 0 || v >= universe) return false;
      chi.Set(v);
    }
    for (int e : lambda) {
      if (e < 0) return false;
    }
    decomp.AddNode(std::move(lambda), std::move(chi), parent);
  }
  if (num_nodes > 0 && roots != 1) return false;
  if (num_nodes > 0) {
    *out = std::move(decomp);
  } else {
    out->reset();
  }
  return true;
}

void WriteCacheEntry(ByteWriter& w, const CacheKey& key, const SolveResult& result) {
  w.PutU64(key.fingerprint.hi);
  w.PutU64(key.fingerprint.lo);
  w.PutI32(key.k);
  w.PutU64(key.config_digest);
  w.PutU8(static_cast<uint8_t>(result.outcome));
  WriteSolveStats(w, result.stats);
  w.PutU8(result.decomposition.has_value() ? 1 : 0);
  if (result.decomposition.has_value()) {
    WriteDecomposition(w, *result.decomposition);
  }
}

bool ReadCacheEntry(ByteReader& r, CacheKey* key, SolveResult* result) {
  uint8_t outcome, has_decomp;
  if (!r.GetU64(&key->fingerprint.hi) || !r.GetU64(&key->fingerprint.lo) ||
      !r.GetI32(&key->k) || !r.GetU64(&key->config_digest) || !r.GetU8(&outcome) ||
      !ReadSolveStats(r, &result->stats) || !r.GetU8(&has_decomp)) {
    return false;
  }
  if (outcome > static_cast<uint8_t>(Outcome::kError) || has_decomp > 1) return false;
  result->outcome = static_cast<Outcome>(outcome);
  if (has_decomp == 1) {
    if (!ReadDecomposition(r, &result->decomposition)) return false;
  } else {
    result->decomposition.reset();
  }
  return true;
}

// ---------------------------------------------------------------------------
// Subproblem-store entries.

void WriteFragment(ByteWriter& w, const PortableFragment& fragment) {
  w.PutI32(fragment.root);
  w.PutU32(static_cast<uint32_t>(fragment.nodes.size()));
  for (const PortableFragmentNode& node : fragment.nodes) {
    w.PutI32(node.special);
    w.PutIntVec(node.lambda);
    w.PutIntVec(node.chi);
    w.PutIntVec(node.children);
  }
}

bool ReadFragment(ByteReader& r, PortableFragment* fragment) {
  uint32_t num_nodes;
  if (!r.GetI32(&fragment->root) || !r.GetU32(&num_nodes)) return false;
  fragment->nodes.clear();
  for (uint32_t i = 0; i < num_nodes; ++i) {
    PortableFragmentNode node;
    if (!r.GetI32(&node.special) || !r.GetIntVec(&node.lambda) ||
        !r.GetIntVec(&node.chi) || !r.GetIntVec(&node.children)) {
      return false;
    }
    fragment->nodes.push_back(std::move(node));
  }
  const int n = static_cast<int>(fragment->nodes.size());
  if (fragment->root < 0 || fragment->root >= n) return false;
  for (const PortableFragmentNode& node : fragment->nodes) {
    for (int child : node.children) {
      if (child < 0 || child >= n) return false;
    }
  }
  return true;
}

void WriteStoreEntry(ByteWriter& w, const SubproblemStore::ExportedEntry& entry) {
  w.PutU64(entry.fingerprint.hi);
  w.PutU64(entry.fingerprint.lo);
  w.PutI32(entry.k);
  w.PutU32(static_cast<uint32_t>(entry.negatives.size()));
  for (const auto& traces : entry.negatives) w.PutTraces(traces);
  w.PutU32(static_cast<uint32_t>(entry.positives.size()));
  for (const SubproblemStore::ExportedPositive& positive : entry.positives) {
    w.PutTraces(positive.traces);
    WriteFragment(w, positive.fragment);
  }
}

bool ReadStoreEntry(ByteReader& r, SubproblemStore::ExportedEntry* entry) {
  uint32_t neg_count, pos_count;
  if (!r.GetU64(&entry->fingerprint.hi) || !r.GetU64(&entry->fingerprint.lo) ||
      !r.GetI32(&entry->k) || !r.GetU32(&neg_count)) {
    return false;
  }
  entry->negatives.clear();
  for (uint32_t i = 0; i < neg_count; ++i) {
    std::vector<std::vector<int>> traces;
    if (!r.GetTraces(&traces)) return false;
    entry->negatives.push_back(std::move(traces));
  }
  if (!r.GetU32(&pos_count)) return false;
  entry->positives.clear();
  for (uint32_t i = 0; i < pos_count; ++i) {
    SubproblemStore::ExportedPositive positive;
    if (!r.GetTraces(&positive.traces) || !ReadFragment(r, &positive.fragment)) {
      return false;
    }
    entry->positives.push_back(std::move(positive));
  }
  return true;
}

// Shared tail of EncodeSnapshot / SaveSnapshot: encodes and reports how many
// entries of each section were actually written (after range filtering).
std::string EncodeSnapshotCounted(ResultCache* cache, SubproblemStore* store,
                                  uint64_t config_digest,
                                  const FingerprintRange* range,
                                  SnapshotStats* written) {
  ByteWriter payload;

  std::vector<std::pair<CacheKey, SolveResult>> cache_entries;
  if (cache != nullptr) {
    cache->ForEach(
        [&](const CacheKey& key, const SolveResult& result) {
          cache_entries.emplace_back(key, result);
        },
        range);
  }
  payload.PutU64(cache_entries.size());
  for (const auto& [key, result] : cache_entries) {
    WriteCacheEntry(payload, key, result);
  }

  std::vector<SubproblemStore::ExportedEntry> store_entries;
  if (store != nullptr) store_entries = store->Export(range);
  // Save-time compaction: don't persist variants a different-k variant of
  // the same fingerprint already dominates (the in-memory store defers this
  // to here; cross-k Lookup makes the compacted snapshot answer exactly the
  // same queries).
  written->compacted = SubproblemStore::CompactExported(&store_entries);
  payload.PutU64(store_entries.size());
  for (const SubproblemStore::ExportedEntry& entry : store_entries) {
    WriteStoreEntry(payload, entry);
  }

  written->cache_entries = cache_entries.size();
  written->store_entries = store_entries.size();

  std::string body = payload.Take();
  ByteWriter header;
  header.PutU8(kMagic[0]);
  for (int i = 1; i < 8; ++i) header.PutU8(static_cast<uint8_t>(kMagic[i]));
  header.PutU32(kSnapshotVersion);
  header.PutU64(config_digest);
  header.PutU64(body.size());
  header.PutU64(Fnv1a64(body));
  std::string out = header.Take();
  out += body;
  written->bytes = out.size();
  return out;
}

}  // namespace

std::string EncodeSnapshot(ResultCache* cache, SubproblemStore* store,
                           uint64_t config_digest,
                           const FingerprintRange* range) {
  SnapshotStats written;
  return EncodeSnapshotCounted(cache, store, config_digest, range, &written);
}

std::string EncodeSnapshot(ResultCache* cache, SubproblemStore* store,
                           uint64_t config_digest, const FingerprintRange* range,
                           SnapshotStats* written) {
  return EncodeSnapshotCounted(cache, store, config_digest, range, written);
}

util::StatusOr<SnapshotStats> DecodeSnapshot(const std::string& bytes,
                                             ResultCache* cache,
                                             SubproblemStore* store,
                                             const FingerprintRange* range) {
  if (bytes.size() < kHeaderBytes) {
    return util::Status::InvalidArgument("snapshot truncated: shorter than header");
  }
  if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return util::Status::InvalidArgument("not a snapshot file (bad magic)");
  }
  ByteReader header(std::string_view(bytes).substr(sizeof(kMagic),
                                                   kHeaderBytes - sizeof(kMagic)));
  uint32_t version;
  uint64_t config_digest, payload_size, checksum;
  header.GetU32(&version);
  header.GetU64(&config_digest);
  header.GetU64(&payload_size);
  header.GetU64(&checksum);
  if (version != kSnapshotVersion) {
    return util::Status::FailedPrecondition(
        "snapshot version mismatch: file has v" + std::to_string(version) +
        ", this build reads v" + std::to_string(kSnapshotVersion));
  }
  std::string_view payload = std::string_view(bytes).substr(kHeaderBytes);
  if (payload.size() != payload_size) {
    return util::Status::InvalidArgument(
        "snapshot truncated or padded: payload is " +
        std::to_string(payload.size()) + " bytes, header promises " +
        std::to_string(payload_size));
  }
  if (Fnv1a64(payload) != checksum) {
    return util::Status::InvalidArgument("snapshot corrupt: checksum mismatch");
  }

  // Decode everything into staging vectors first: a snapshot that fails
  // mid-payload must leave the cache and store untouched.
  ByteReader r(payload);
  uint64_t cache_count;
  if (!r.GetU64(&cache_count)) {
    return util::Status::InvalidArgument("snapshot corrupt: cache section header");
  }
  std::vector<std::pair<CacheKey, SolveResult>> cache_entries;
  for (uint64_t i = 0; i < cache_count; ++i) {
    CacheKey key;
    SolveResult result;
    if (!ReadCacheEntry(r, &key, &result)) {
      return util::Status::InvalidArgument(
          "snapshot corrupt: cache entry " + std::to_string(i));
    }
    cache_entries.emplace_back(std::move(key), std::move(result));
  }
  uint64_t store_count;
  if (!r.GetU64(&store_count)) {
    return util::Status::InvalidArgument("snapshot corrupt: store section header");
  }
  std::vector<SubproblemStore::ExportedEntry> store_entries;
  for (uint64_t i = 0; i < store_count; ++i) {
    SubproblemStore::ExportedEntry entry;
    if (!ReadStoreEntry(r, &entry)) {
      return util::Status::InvalidArgument(
          "snapshot corrupt: store entry " + std::to_string(i));
    }
    store_entries.push_back(std::move(entry));
  }
  if (!r.Done()) {
    return util::Status::InvalidArgument("snapshot corrupt: trailing bytes");
  }

  // Sections are written most- to least-recently used, so restoring in
  // reverse re-creates the LRU order (modulo shard-boundary effects when the
  // restoring cache is sharded or sized differently). A range filter drops
  // out-of-range entries here — after validation, so a corrupt snapshot is
  // still rejected whole — which is what lets a pre-resharding snapshot load
  // into a narrower shard.
  SnapshotStats stats;
  stats.bytes = bytes.size();
  if (cache != nullptr) {
    for (auto it = cache_entries.rbegin(); it != cache_entries.rend(); ++it) {
      if (range != nullptr && !range->Contains(it->first.fingerprint)) {
        ++stats.dropped_out_of_range;
        continue;
      }
      cache->Insert(it->first, it->second);
      ++stats.cache_entries;
    }
  } else {
    stats.cache_entries = cache_entries.size();  // decoded (and discarded)
  }
  if (store != nullptr) {
    for (auto it = store_entries.rbegin(); it != store_entries.rend(); ++it) {
      if (store->Import(*it, range)) {
        ++stats.store_entries;
      } else {
        ++stats.dropped_out_of_range;
      }
    }
  } else {
    stats.store_entries = store_entries.size();
  }
  return stats;
}

util::StatusOr<SnapshotStats> SaveSnapshot(const std::string& path,
                                           ResultCache* cache,
                                           SubproblemStore* store,
                                           uint64_t config_digest,
                                           const FingerprintRange* range) {
  SnapshotStats stats;
  std::string bytes =
      EncodeSnapshotCounted(cache, store, config_digest, range, &stats);
  const std::string tmp_path = path + ".tmp";
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      return util::Status::Internal("cannot open " + tmp_path + " for writing");
    }
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    if (!out) {
      return util::Status::Internal("short write to " + tmp_path);
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp_path, path, ec);
  if (ec) {
    std::filesystem::remove(tmp_path, ec);
    return util::Status::Internal("cannot rename snapshot into place: " +
                                  ec.message());
  }
  return stats;
}

util::StatusOr<SnapshotStats> LoadSnapshot(const std::string& path,
                                           ResultCache* cache,
                                           SubproblemStore* store,
                                           const FingerprintRange* range) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return util::Status::NotFound("no snapshot at " + path);
  }
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (!in.good() && !in.eof()) {
    return util::Status::Internal("error reading " + path);
  }
  return DecodeSnapshot(bytes, cache, store, range);
}

}  // namespace htd::service
