// Canonical forms and 128-bit fingerprints for hypergraphs.
//
// The service layer memoizes whole-instance results, so identical instances
// must hash identically no matter how the client named its vertices or in
// which order it listed its edges. This module computes an
// isomorphism-robust canonical form by colour refinement on the bipartite
// incidence structure (vertices seeded with their degree, edges with their
// size — the degree/edge-size refinement of the seed's bitset
// representation), followed by deterministic individualisation of any
// remaining tied colour class.
//
// Guarantees:
//  * Reordering edges or reordering vertices inside an edge never changes
//    the canonical form or the fingerprint. Renaming vertices never does
//    either, except in the pathological case of the third bullet (the
//    individualisation tie-break picks the lowest original id within a
//    tied class, which is only canonical when that class is automorphic).
//  * Two hypergraphs with different canonical forms are non-isomorphic.
//  * Isomorphic hypergraphs receive the same form whenever refinement-
//    equivalent vertices are automorphic — true for everything the corpus
//    and HyperBench-style workloads contain. Pathological refinement-
//    resistant families (e.g. CFI-style constructions) may split one
//    isomorphism class — including renamings of a single instance — across
//    cache entries; that costs a duplicate solve, never a wrong answer.
//
// Fingerprints are 128 bits (two independently seeded 64-bit mixes over the
// canonical edge list), so accidental collisions are out of practical reach.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hypergraph/hypergraph.h"

namespace htd::service {

struct Fingerprint {
  uint64_t hi = 0;
  uint64_t lo = 0;

  bool operator==(const Fingerprint& other) const {
    return hi == other.hi && lo == other.lo;
  }
  bool operator!=(const Fingerprint& other) const { return !(*this == other); }
  bool operator<(const Fingerprint& other) const {
    return hi != other.hi ? hi < other.hi : lo < other.lo;
  }

  /// 32 hex digits, e.g. for log lines and manifests.
  std::string ToHex() const;
};

struct FingerprintHash {
  size_t operator()(const Fingerprint& fp) const {
    return static_cast<size_t>(fp.hi ^ (fp.lo * 0x9e3779b97f4a7c15ULL));
  }
};

struct CanonicalForm {
  int num_vertices = 0;
  int num_edges = 0;
  /// Edges over canonical vertex ids in [0, num_vertices): each edge sorted
  /// ascending, edges sorted lexicographically. Duplicate edges are kept.
  std::vector<std::vector<int>> edges;
  Fingerprint fingerprint;
};

/// Computes the canonical form (refinement + individualisation) of `graph`.
CanonicalForm ComputeCanonicalForm(const Hypergraph& graph);

/// Shorthand when only the 128-bit fingerprint is needed.
Fingerprint CanonicalFingerprint(const Hypergraph& graph);

/// Deterministic text rendering of a canonical form ("n m | e1 | e2 ...");
/// equal strings iff equal forms. Used by tests and debug tooling.
std::string CanonicalString(const CanonicalForm& form);

}  // namespace htd::service
