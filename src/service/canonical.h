// Canonical forms and 128-bit fingerprints for hypergraphs.
//
// The service layer memoizes whole-instance results, so identical instances
// must hash identically no matter how the client named its vertices or in
// which order it listed its edges. This module computes an
// isomorphism-robust canonical form by colour refinement on the bipartite
// incidence structure (vertices seeded with their degree, edges with their
// size — the degree/edge-size refinement of the seed's bitset
// representation), followed by deterministic individualisation of any
// remaining tied colour class.
//
// Guarantees:
//  * Reordering edges or reordering vertices inside an edge never changes
//    the canonical form or the fingerprint. Renaming vertices never does
//    either, except in the pathological case of the third bullet (the
//    individualisation tie-break picks the lowest original id within a
//    tied class, which is only canonical when that class is automorphic).
//  * Two hypergraphs with different canonical forms are non-isomorphic.
//  * Isomorphic hypergraphs receive the same form whenever refinement-
//    equivalent vertices are automorphic — true for everything the corpus
//    and HyperBench-style workloads contain. Pathological refinement-
//    resistant families (e.g. CFI-style constructions) may split one
//    isomorphism class — including renamings of a single instance — across
//    cache entries; that costs a duplicate solve, never a wrong answer.
//
// Fingerprints are 128 bits (two independently seeded 64-bit mixes over the
// canonical edge list), so accidental collisions are out of practical reach.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "decomp/extended_subhypergraph.h"
#include "decomp/special_edges.h"
#include "hypergraph/hypergraph.h"

namespace htd::service {

struct Fingerprint {
  uint64_t hi = 0;
  uint64_t lo = 0;

  bool operator==(const Fingerprint& other) const {
    return hi == other.hi && lo == other.lo;
  }
  bool operator!=(const Fingerprint& other) const { return !(*this == other); }
  bool operator<(const Fingerprint& other) const {
    return hi != other.hi ? hi < other.hi : lo < other.lo;
  }

  /// 32 hex digits, e.g. for log lines and manifests.
  std::string ToHex() const;

  /// Inverse of ToHex: exactly 32 hex digits. Returns false on anything else.
  static bool FromHex(std::string_view text, Fingerprint* out);
};

/// A contiguous slice of the 128-bit fingerprint space, bounded (inclusive)
/// on the high word only — the sharding layer (service/shard_map.h) splits
/// the space into N equal hi-ranges, so membership never needs `lo`.
/// first_hi = 0 and last_hi = UINT64_MAX is the full space.
struct FingerprintRange {
  uint64_t first_hi = 0;
  uint64_t last_hi = ~0ULL;

  bool Contains(const Fingerprint& fp) const {
    return fp.hi >= first_hi && fp.hi <= last_hi;
  }
  bool operator==(const FingerprintRange& other) const {
    return first_hi == other.first_hi && last_hi == other.last_hi;
  }
};

struct FingerprintHash {
  size_t operator()(const Fingerprint& fp) const {
    return static_cast<size_t>(fp.hi ^ (fp.lo * 0x9e3779b97f4a7c15ULL));
  }
};

struct CanonicalForm {
  int num_vertices = 0;
  int num_edges = 0;
  /// Edges over canonical vertex ids in [0, num_vertices): each edge sorted
  /// ascending, edges sorted lexicographically. Duplicate edges are kept.
  std::vector<std::vector<int>> edges;
  Fingerprint fingerprint;
};

/// Computes the canonical form (refinement + individualisation) of `graph`.
CanonicalForm ComputeCanonicalForm(const Hypergraph& graph);

/// Shorthand when only the 128-bit fingerprint is needed.
Fingerprint CanonicalFingerprint(const Hypergraph& graph);

/// Deterministic text rendering of a canonical form ("n m | e1 | e2 ...");
/// equal strings iff equal forms. Used by tests and debug tooling.
std::string CanonicalString(const CanonicalForm& form);

/// Canonical form of an extended sub-hypergraph ⟨E', Sp⟩ with its connector
/// Conn, inside a base hypergraph. The subproblem store keys on this: two
/// subproblems — possibly of *different* instances — that are isomorphic as
/// labelled structures receive the same fingerprint.
///
/// The labelling distinguishes everything the subproblem's outcome can
/// legally depend on: special edges carry a distinct edge colour (a special
/// edge is an interface vertex set, not a λ-candidate), and connector
/// vertices carry a distinct vertex colour (they must be covered by the
/// fragment root). Both labels seed the colour refinement, so they are
/// isomorphism-invariants of the refined partition, and both are absorbed
/// into the fingerprint. The same refinement-resistance caveat as
/// ComputeCanonicalForm applies: a pathological symmetric subproblem may
/// split one isomorphism class across fingerprints — a missed reuse, never a
/// wrong one.
struct SubproblemCanonicalForm {
  Fingerprint fingerprint;

  int num_vertices = 0;  ///< |V(H')| — vertices of all (special) edges

  /// canonical vertex id → base-graph vertex id.
  std::vector<int> canonical_vertices;
  /// base-graph vertex id → canonical id, or -1 for vertices outside V(H').
  /// Sized to the base graph's vertex universe (dense for fast trace
  /// computation; the fill is O(|V(H)|) per call).
  std::vector<int> base_vertex_rank;

  /// canonical special order → special-edge id (SpecialEdgeRegistry).
  /// Component edges cross instances as traces (see the subproblem store),
  /// so no edge-order mapping is kept for them.
  std::vector<int> special_order;
};

/// Canonicalises ⟨comp, Conn⟩ by colour refinement restricted to the
/// component: vertices are seeded with (degree, Conn-membership), edges with
/// (size, is-special). `conn` uses the base graph's vertex universe; only
/// its intersection with V(H') participates (the solvers never pass
/// connectors outside the component, but the restriction makes the entry
/// point total).
SubproblemCanonicalForm FingerprintSubhypergraph(const Hypergraph& graph,
                                                 const SpecialEdgeRegistry& registry,
                                                 const ExtendedSubhypergraph& comp,
                                                 const util::DynamicBitset& conn);

}  // namespace htd::service
