// Snapshot / restore of the service layer's warm state.
//
// The result cache (service/result_cache.h) and the subproblem store
// (service/subproblem_store.h) are exactly the state the paper's log-depth
// parallel search makes expensive to recompute, and both die with the
// process. This module serialises them to one versioned binary snapshot so
// a restarted server (tools/hdserver.cc) answers previously-solved
// instances as cache hits immediately.
//
// Format (all integers little-endian):
//
//   [ 0..8)   magic     "HTDSNAP1"
//   [ 8..12)  version   u32 — kSnapshotVersion; any mismatch is refused
//   [12..20)  digest    u64 — writer's SolverConfigDigest, informational
//                       (cache keys embed their own digest, so entries from
//                       a differently-configured writer restore but never
//                       hit; subproblem facts are solver-independent)
//   [20..28)  size      u64 — payload byte count
//   [28..36)  checksum  u64 — FNV-1a over the payload
//   [36.. )   payload   cache section, then store section
//
// Safety: Decode validates magic, version, size, and checksum, then decodes
// the full payload into staging vectors BEFORE touching the cache or store —
// a truncated, corrupt, or version-mismatched snapshot is rejected with a
// descriptive Status and the target objects are left exactly as they were
// (a restarting server simply starts cold). Restore goes through the normal
// Insert/Import paths, so restoring into a non-empty or smaller-capacity
// target is safe (LRU/antichain/eviction rules apply as usual).
#pragma once

#include <cstdint>
#include <string>

#include "service/result_cache.h"
#include "service/subproblem_store.h"
#include "util/status.h"

namespace htd::service {

/// Bumped on any incompatible change to the payload encoding.
inline constexpr uint32_t kSnapshotVersion = 1;

struct SnapshotStats {
  size_t cache_entries = 0;  ///< result-cache entries written / restored
  size_t store_entries = 0;  ///< subproblem-store keys written / restored
  size_t bytes = 0;          ///< snapshot size, header included
  /// Entries skipped by a fingerprint-range filter on restore — a snapshot
  /// taken before resharding loads cleanly, keeping only the entries this
  /// shard still owns (service/shard_map.h).
  size_t dropped_out_of_range = 0;
  /// Store variants dropped by save-time compaction
  /// (SubproblemStore::CompactExported): a variant dominated by a
  /// different-k variant of the same fingerprint is not written. Set on
  /// encode/save; 0 on restore.
  size_t compacted = 0;
};

/// Serialises the current contents of `cache` and `store` (either may be
/// nullptr — its section is written empty). `config_digest` is recorded in
/// the header for diagnostics. A non-null `range` restricts both sections
/// to entries whose fingerprint it contains — a sharded server persists
/// only its slice of the key space.
std::string EncodeSnapshot(ResultCache* cache, SubproblemStore* store,
                           uint64_t config_digest,
                           const FingerprintRange* range = nullptr);

/// As above, additionally reporting how many entries of each section were
/// actually written (after range filtering) in `*written` — the live
/// migration path (net/decomposition_server.h `/v1/admin/migrate`) uses the
/// counts to tell "nothing to move" from "moved N entries".
std::string EncodeSnapshot(ResultCache* cache, SubproblemStore* store,
                           uint64_t config_digest, const FingerprintRange* range,
                           SnapshotStats* written);

/// Validates and decodes `bytes`, then restores entries into `cache` and
/// `store` (either may be nullptr — its section is decoded and discarded).
/// On any validation or decode failure nothing is restored and an
/// InvalidArgument / FailedPrecondition status describes the problem.
/// A non-null `range` drops entries outside it (counted in
/// dropped_out_of_range, excluded from the restored counts), so a
/// pre-resharding snapshot restores cleanly into a narrower shard.
util::StatusOr<SnapshotStats> DecodeSnapshot(const std::string& bytes,
                                             ResultCache* cache,
                                             SubproblemStore* store,
                                             const FingerprintRange* range = nullptr);

/// EncodeSnapshot + atomic file write (temp file in the same directory,
/// then rename), so a crash mid-save never corrupts an existing snapshot.
util::StatusOr<SnapshotStats> SaveSnapshot(const std::string& path,
                                           ResultCache* cache,
                                           SubproblemStore* store,
                                           uint64_t config_digest,
                                           const FingerprintRange* range = nullptr);

/// Reads `path` and restores via DecodeSnapshot. NotFound when the file does
/// not exist (callers treat that as a normal cold start).
util::StatusOr<SnapshotStats> LoadSnapshot(const std::string& path,
                                           ResultCache* cache,
                                           SubproblemStore* store,
                                           const FingerprintRange* range = nullptr);

}  // namespace htd::service
