// Anti-entropy digests: cheap, order-independent summaries of the warm
// state, so replica siblings can find out WHERE they differ before moving
// any bytes.
//
// An entry solved organically lands only on the replica that solved it
// (net/shard_router.h round-robins reads), so siblings of a replicated
// range drift apart — and a killed-and-revived replica serves cold until
// someone reconciles it. The sweep in net/decomposition_server.h closes
// that gap: each replica periodically asks its siblings for a digest of
// their range, compares slice by slice, and pulls only the differing
// slices through the existing /v1/admin/export|import snapshot codec
// (service/persistence.h), merging under the store's dominance rules.
//
// What the digest hashes — and deliberately does not:
//   * result-cache entries hash their KEY only ⟨fingerprint, k,
//     config_digest⟩. Two replicas that solved the same instance
//     independently hold different SolveStats (timings, work counters);
//     hashing the value would make digests never converge.
//   * store entries hash ⟨fingerprint, k⟩ plus the *trace sets* of their
//     variants, never fragment bytes: two fragments with equal used-trace
//     sets dominate exactly the same queries, so they are knowledge-equal
//     even when the decompositions differ.
//   * both are folded per slice with XOR, so the digest is independent of
//     iteration (LRU) order.
//   * the store side is digested over the COMPACTED view
//     (SubproblemStore::CompactExported): a replica that has dropped a
//     cross-k-dominated variant at save time digests equal to one that
//     still holds it, so equivalent knowledge never re-syncs.
//
// The wire form (GET /v1/admin/digest) is a strict line-oriented text
// format — see RenderDigestSummary — parsed with the same
// reject-anything-odd discipline as the snapshot codec: a truncated or
// bit-flipped response fails ParseDigestSummary and aborts the sweep round
// cleanly instead of triggering bogus pulls.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "service/canonical.h"
#include "service/result_cache.h"
#include "service/subproblem_store.h"
#include "util/status.h"

namespace htd::service {

/// One contiguous hi-word sub-slice of a range, with the XOR-fold of its
/// entry hashes and the entry counts (counts are informational; equality is
/// decided on `digest`).
struct DigestSlice {
  FingerprintRange range;
  uint64_t digest = 0;
  uint64_t cache_entries = 0;
  uint64_t store_entries = 0;

  bool operator==(const DigestSlice& other) const {
    return range == other.range && digest == other.digest &&
           cache_entries == other.cache_entries &&
           store_entries == other.store_entries;
  }
};

struct DigestSummary {
  /// The responder's solver-config digest. Siblings with different configs
  /// hold incomparable cache entries; the sweep skips them.
  uint64_t config_digest = 0;
  std::vector<DigestSlice> slices;
};

/// Splits `range` into `slices` contiguous sub-ranges (the last absorbs the
/// remainder; with fewer hi values than slices, trailing slices are dropped,
/// so every returned range is non-empty). slices >= 1.
std::vector<FingerprintRange> SplitRange(const FingerprintRange& range,
                                         int slices);

/// Digests the current contents of `cache` and `store` (either may be
/// nullptr) restricted to `range`, split into `slices` sub-slices. Two
/// replicas with knowledge-equivalent warm state over `range` produce equal
/// summaries regardless of insertion order, solve timings, fragment choice,
/// or save-time compaction.
DigestSummary ComputeDigestSummary(ResultCache* cache, SubproblemStore* store,
                                   uint64_t config_digest,
                                   const FingerprintRange& range, int slices);

/// Strict text wire form:
///
///   HTDDIGEST1 <config_digest:16hex> <num_slices>
///   <first_hi:16hex>-<last_hi:16hex> <digest:16hex> <cache_n> <store_n>
///   ...one line per slice, ascending and contiguous...
std::string RenderDigestSummary(const DigestSummary& summary);

/// Inverse of RenderDigestSummary. Anything malformed — wrong magic, bad
/// hex width or case, a slice count that does not match the line count,
/// overlapping or non-contiguous or descending slices, trailing bytes —
/// is InvalidArgument; a valid summary is returned exactly as rendered.
util::StatusOr<DigestSummary> ParseDigestSummary(const std::string& text);

}  // namespace htd::service
