// DecompositionService: the façade over the service subsystem.
//
// Request flow (docs/SERVICE.md has the full picture):
//
//   Submit(graph, k)
//     ➞ canonical fingerprint            (service/canonical.h)
//     ➞ sharded result cache lookup      (service/result_cache.h)
//     ➞ single-flight batch scheduler    (service/scheduler.h)
//     ➞ solver from the name registry    (core/solver_factory.h)
//
// The service owns the cache and the scheduler and runs every solve on the
// fleet-wide work-stealing executor (util/executor.h — the process-global
// one unless ServiceOptions::executor injects a private instance); callers
// only hold futures. One service instance is meant to be long-lived and
// shared across many clients — every knob that changes the answers a solve
// can produce is part of the cache key, so mixing workloads is safe.
#pragma once

#include <cstddef>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "core/solver.h"
#include "core/solver_factory.h"
#include "service/result_cache.h"
#include "service/scheduler.h"
#include "service/subproblem_store.h"
#include "util/executor.h"
#include "util/metrics.h"
#include "util/status.h"
#include "util/trace.h"

namespace htd::service {

/// ServiceOptions extends SolveOptions with the service-level knobs.
struct ServiceOptions {
  /// Base solver configuration; `cancel` is ignored (deadlines are per-job),
  /// `num_threads` hints the intra-solve width. num_threads == 0 means "as
  /// wide as the executor": the solve offers chunk tasks for the whole
  /// fleet and whatever is free runs them, so a lone flight widens to every
  /// core and a deep queue naturally runs ~one worker per flight — with no
  /// admission-time pick (the old PickAutoThreads is gone).
  SolveOptions solve;

  /// Solver registry name (core/solver_factory.h): "logk", "logk-basic",
  /// "detk", "hybrid", "balsep-ghd".
  std::string solver_name = "logk";

  /// Executor every flight and chunk task runs on (not owned; must outlive
  /// the service). nullptr = the process-wide util::Executor::Global().
  /// Tests and benches inject a private instance for deterministic widths.
  util::Executor* executor = nullptr;

  /// Compatibility knob from the thread-pool era: tools use it to size the
  /// global executor at startup (util::Executor::InitGlobal). The service
  /// itself no longer forks workers; when `executor` is set this is unused.
  int num_workers = 4;

  /// Whole-instance result memoization.
  bool enable_result_cache = true;
  size_t cache_capacity = 4096;
  int cache_shards = 16;

  /// Cross-instance subproblem memoization: one SubproblemStore shared by
  /// every worker and every solve, so overlapping instances reuse each
  /// other's subproblem outcomes (docs/SERVICE.md). Off by default — the
  /// result cache already covers identical resubmissions; enable it for
  /// workloads with repeated substructure across *distinct* instances.
  bool enable_subproblem_store = false;
  SubproblemStore::Options subproblem_store;

  /// Deadline applied to jobs submitted without an explicit timeout
  /// (0 = none).
  double default_timeout_seconds = 0.0;
};

class DecompositionService {
 public:
  /// Aborts (HTD_CHECK) on an unknown solver name; use Create() to validate.
  explicit DecompositionService(ServiceOptions options = {});
  ~DecompositionService();

  DecompositionService(const DecompositionService&) = delete;
  DecompositionService& operator=(const DecompositionService&) = delete;

  /// Validating constructor: kInvalidArgument on a bad configuration.
  static util::StatusOr<std::unique_ptr<DecompositionService>> Create(
      ServiceOptions options);

  /// Submits one job; uses options().default_timeout_seconds.
  std::future<JobResult> Submit(const Hypergraph& graph, int k);
  /// Submits one job with an explicit deadline (0 = none).
  std::future<JobResult> Submit(const Hypergraph& graph, int k,
                                double timeout_seconds);
  /// Submits one traced job: scheduler and solver spans (fingerprint,
  /// cache probe, schedule wait, solve, per-level separator search) are
  /// parented under `trace`. A zero TraceParent records nothing. `lane`
  /// places the flight on the executor (sync for blocking clients, async
  /// for polled decompose jobs, background for best-effort work).
  std::future<JobResult> Submit(
      const Hypergraph& graph, int k, double timeout_seconds,
      util::TraceParent trace,
      util::Executor::Lane lane = util::Executor::Lane::kSync);

  /// Submits many jobs with a single scheduler hand-off; futures are
  /// index-aligned with `jobs`.
  std::vector<std::future<JobResult>> SubmitBatch(const std::vector<JobSpec>& jobs);

  /// Synchronous convenience wrapper: Submit + wait.
  JobResult Solve(const Hypergraph& graph, int k);

  /// Cooperatively cancels all in-flight work.
  void CancelAll();
  /// Blocks until every admitted job has completed.
  void Drain();

  ResultCache::Stats cache_stats() const;
  BatchScheduler::Stats scheduler_stats() const;
  /// Zeroed stats when the subproblem store is disabled.
  SubproblemStore::Stats subproblem_stats() const;
  /// Solver runs outstanding (admitted flights not yet fanned out).
  int queue_depth() const;
  /// Jobs admitted whose futures have not resolved yet; the admission-control
  /// front-end (net/decomposition_server.h) sheds load against this.
  uint64_t outstanding_jobs() const;
  const ServiceOptions& options() const { return options_; }

  /// Warm state, for snapshot/restore (service/persistence.h). Null when the
  /// corresponding layer is disabled.
  ResultCache* result_cache() { return cache_.get(); }
  SubproblemStore* subproblem_store() { return subproblem_store_.get(); }

  /// The executor this service's flights run on (global unless injected).
  util::Executor& executor() { return *executor_; }

  /// The service's metric registry: stage latency histograms (observed by
  /// the scheduler), component counters registered as callbacks — derived
  /// counters before their totals, so one Snapshot() never reports a part
  /// exceeding its whole (the /v1/stats consistency contract). The HTTP
  /// front-end adds its own parse/serialise histograms and admission
  /// counters here and renders the whole thing at /v1/metrics.
  util::MetricsRegistry& metrics() { return metrics_; }

  /// Observes the net-layer stage costs (parse and serialise) into the
  /// stage histogram family the scheduler populates for the other stages.
  void ObserveParseSeconds(double seconds);
  void ObserveSerialiseSeconds(double seconds);

 private:
  void RegisterComponentMetrics();

  ServiceOptions options_;
  util::MetricsRegistry metrics_;  // declared before the scheduler using it
  util::Executor* executor_;       // not owned; global unless injected
  std::unique_ptr<ResultCache> cache_;       // null when caching is disabled
  std::unique_ptr<SubproblemStore> subproblem_store_;  // null when disabled
  std::unique_ptr<BatchScheduler> scheduler_;
  util::Histogram* stage_parse_ = nullptr;
  util::Histogram* stage_serialise_ = nullptr;
};

}  // namespace htd::service
