// Sharded, mutex-striped LRU cache for whole-instance solve results.
//
// Keys combine the canonical fingerprint of the instance, the width
// parameter k, and a digest of the answer-affecting solver configuration
// (core/solver_factory.h). Values are full SolveResults, so a hit returns
// the decomposition itself, not just the yes/no answer.
//
// Concurrency: the key space is striped over independent shards, each with
// its own mutex and LRU list, so concurrent lookups of different instances
// never contend. Statistics are lock-free atomics.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/solver.h"
#include "service/canonical.h"

namespace htd::service {

struct CacheKey {
  Fingerprint fingerprint;
  int k = 0;
  uint64_t config_digest = 0;

  bool operator==(const CacheKey& other) const {
    return fingerprint == other.fingerprint && k == other.k &&
           config_digest == other.config_digest;
  }
};

struct CacheKeyHash {
  size_t operator()(const CacheKey& key) const {
    uint64_t h = key.fingerprint.hi;
    h ^= key.fingerprint.lo * 0x9e3779b97f4a7c15ULL;
    h ^= (static_cast<uint64_t>(key.k) + 0x517cc1b727220a95ULL) * 0xff51afd7ed558ccdULL;
    h ^= key.config_digest * 0xc4ceb9fe1a85ec53ULL;
    return static_cast<size_t>(h);
  }
};

class ResultCache {
 public:
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0;
    uint64_t evictions = 0;
    size_t entries = 0;
    size_t capacity = 0;
  };

  /// Roughly `capacity` entries total, striped over `num_shards` shards.
  /// Each shard holds ceil(capacity/num_shards), so the effective total
  /// (GetStats().capacity) can exceed `capacity` by up to num_shards - 1.
  /// capacity >= 1; num_shards is clamped to [1, capacity].
  explicit ResultCache(size_t capacity, int num_shards = 16);

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// Returns a copy of the cached result and refreshes its LRU position.
  std::optional<SolveResult> Lookup(const CacheKey& key);

  /// Inserts (or refreshes) an entry, evicting the shard's least recently
  /// used entry when the shard is full.
  void Insert(const CacheKey& key, const SolveResult& result);

  /// Drops every entry (stats are kept).
  void Clear();

  /// Visits every resident entry, shard by shard, most- to least-recently
  /// used within a shard. Holds one shard lock at a time; do not call back
  /// into the same cache from `fn`. Used by the snapshot writer
  /// (service/persistence.h). With a non-null `range`, entries whose
  /// fingerprint falls outside it are skipped — a fingerprint-range-sharded
  /// server persists only its slice of the key space (service/shard_map.h).
  void ForEach(const std::function<void(const CacheKey&, const SolveResult&)>& fn,
               const FingerprintRange* range = nullptr);

  Stats GetStats() const;
  size_t num_entries() const;
  int num_shards() const { return static_cast<int>(shards_.size()); }

 private:
  struct Entry {
    CacheKey key;
    SolveResult result;
  };
  struct Shard {
    std::mutex mutex;
    std::list<Entry> lru;  // front = most recently used
    std::unordered_map<CacheKey, std::list<Entry>::iterator, CacheKeyHash> index;
  };

  Shard& ShardFor(const CacheKey& key);

  size_t per_shard_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;

  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> insertions_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<size_t> entries_{0};
};

}  // namespace htd::service
