#include "service/shard_map.h"

#include <cstdio>

#include "util/cli.h"
#include "util/hash.h"
#include "util/logging.h"

namespace htd::service {

namespace {

constexpr int kMaxShards = 4096;
constexpr int kMaxReplicas = 8;

std::string_view TrimSpaces(std::string_view text) {
  while (!text.empty() && (text.front() == ' ' || text.front() == '\t')) {
    text.remove_prefix(1);
  }
  while (!text.empty() && (text.back() == ' ' || text.back() == '\t')) {
    text.remove_suffix(1);
  }
  return text;
}

}  // namespace

ShardMap::ShardMap(std::vector<std::vector<ShardEndpoint>> replicas)
    : replicas_(std::move(replicas)) {
  HTD_CHECK_GE(replicas_.size(), 1u);
  const uint64_t n = replicas_.size();
  // floor((2^64 - 1) / n) + 1: n slices of this width cover the whole space,
  // and (n-1) * step_ never overflows for n <= kMaxShards (<< 2^32).
  step_ = n == 1 ? 0 : (~0ULL / n) + 1;
}

util::StatusOr<ShardMap> ShardMap::Parse(const std::string& spec) {
  std::vector<std::vector<ShardEndpoint>> replicas;
  int pending_replicas = 0;  // plain items still owed to the open group
  std::string_view rest = spec;
  while (true) {
    size_t comma = rest.find(',');
    std::string_view item = TrimSpaces(rest.substr(0, comma));
    if (item.empty()) {
      return util::Status::InvalidArgument(
          "shard map: empty endpoint in \"" + spec + "\"");
    }
    // "host:port*R" opens a replica group of R endpoints; the R-1 plain
    // items that follow join it instead of opening new ranges.
    long replica_count = 1;
    size_t star = item.rfind('*');
    if (star != std::string_view::npos) {
      if (pending_replicas > 0) {
        return util::Status::InvalidArgument(
            "shard map: \"" + std::string(item) +
            "\" opens a replica group inside another replica group");
      }
      if (!util::ParseIntFlag(item.substr(star + 1), 1, kMaxReplicas,
                              &replica_count)) {
        return util::Status::InvalidArgument(
            "shard map: bad replica count in \"" + std::string(item) +
            "\" (expected *1 to *" + std::to_string(kMaxReplicas) + ")");
      }
      item = item.substr(0, star);
    }
    size_t colon = item.rfind(':');
    if (colon == std::string_view::npos || colon == 0) {
      return util::Status::InvalidArgument(
          "shard map: endpoint \"" + std::string(item) +
          "\" is not host:port");
    }
    long port;
    if (!util::ParseIntFlag(item.substr(colon + 1), 1, 65535, &port)) {
      return util::Status::InvalidArgument(
          "shard map: bad port in \"" + std::string(item) + "\"");
    }
    ShardEndpoint endpoint{std::string(item.substr(0, colon)),
                           static_cast<int>(port)};
    for (const auto& range : replicas) {
      for (const ShardEndpoint& existing : range) {
        if (existing == endpoint) {
          return util::Status::InvalidArgument(
              "shard map: duplicate endpoint " + endpoint.host + ":" +
              std::to_string(endpoint.port));
        }
      }
    }
    if (pending_replicas > 0) {
      replicas.back().push_back(std::move(endpoint));
      --pending_replicas;
    } else {
      replicas.push_back({std::move(endpoint)});
      pending_replicas = static_cast<int>(replica_count) - 1;
    }
    if (comma == std::string_view::npos) break;
    rest = rest.substr(comma + 1);
  }
  if (pending_replicas > 0) {
    return util::Status::InvalidArgument(
        "shard map: replica group is " + std::to_string(pending_replicas) +
        " endpoint(s) short in \"" + spec + "\"");
  }
  if (static_cast<int>(replicas.size()) > kMaxShards) {
    return util::Status::InvalidArgument(
        "shard map: more than " + std::to_string(kMaxShards) + " shards");
  }
  return ShardMap(std::move(replicas));
}

std::string ShardMap::Serialise() const {
  std::string out;
  for (const std::vector<ShardEndpoint>& range : replicas_) {
    for (size_t r = 0; r < range.size(); ++r) {
      if (!out.empty()) out += ',';
      out += range[r].host + ":" + std::to_string(range[r].port);
      if (r == 0 && range.size() > 1) {
        out += "*" + std::to_string(range.size());
      }
    }
  }
  return out;
}

uint64_t ShardMap::Digest() const {
  // FNV-1a over the canonical serialisation, then mixed: equal maps — and
  // only equal maps — digest equally. The serialisation carries the replica
  // grouping, so changing replication alone changes the digest too.
  uint64_t h = 1469598103934665603ULL;
  const std::string text =
      std::to_string(replicas_.size()) + ";" + Serialise();
  for (unsigned char c : text) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return util::Mix64(h);
}

std::string ShardMap::DigestHex() const {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(Digest()));
  return std::string(buf);
}

int ShardMap::num_endpoints() const {
  int total = 0;
  for (const std::vector<ShardEndpoint>& range : replicas_) {
    total += static_cast<int>(range.size());
  }
  return total;
}

int ShardMap::RangeOfEndpoint(const ShardEndpoint& endpoint) const {
  for (size_t index = 0; index < replicas_.size(); ++index) {
    for (const ShardEndpoint& candidate : replicas_[index]) {
      if (candidate == endpoint) return static_cast<int>(index);
    }
  }
  return -1;
}

std::vector<ShardEndpoint> ShardMap::Siblings(int index,
                                              const ShardEndpoint& self) const {
  HTD_CHECK_GE(index, 0);
  HTD_CHECK_LT(index, num_shards());
  std::vector<ShardEndpoint> siblings;
  for (const ShardEndpoint& candidate : replicas_[index]) {
    if (candidate == self) continue;
    siblings.push_back(candidate);
  }
  return siblings;
}

int ShardMap::IndexFor(const Fingerprint& fp) const {
  if (step_ == 0) return 0;
  const uint64_t index = fp.hi / step_;
  const uint64_t last = replicas_.size() - 1;
  return static_cast<int>(index < last ? index : last);
}

FingerprintRange ShardMap::RangeFor(int index) const {
  HTD_CHECK_GE(index, 0);
  HTD_CHECK_LT(index, num_shards());
  if (step_ == 0) return FingerprintRange{};
  FingerprintRange range;
  range.first_hi = static_cast<uint64_t>(index) * step_;
  range.last_hi = index == num_shards() - 1
                      ? ~0ULL
                      : static_cast<uint64_t>(index + 1) * step_ - 1;
  return range;
}

}  // namespace htd::service
