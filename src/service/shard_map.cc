#include "service/shard_map.h"

#include <cstdio>

#include "util/cli.h"
#include "util/hash.h"
#include "util/logging.h"

namespace htd::service {

namespace {

constexpr int kMaxShards = 4096;

std::string_view TrimSpaces(std::string_view text) {
  while (!text.empty() && (text.front() == ' ' || text.front() == '\t')) {
    text.remove_prefix(1);
  }
  while (!text.empty() && (text.back() == ' ' || text.back() == '\t')) {
    text.remove_suffix(1);
  }
  return text;
}

}  // namespace

ShardMap::ShardMap(std::vector<ShardEndpoint> endpoints)
    : endpoints_(std::move(endpoints)) {
  HTD_CHECK_GE(endpoints_.size(), 1u);
  const uint64_t n = endpoints_.size();
  // floor((2^64 - 1) / n) + 1: n slices of this width cover the whole space,
  // and (n-1) * step_ never overflows for n <= kMaxShards (<< 2^32).
  step_ = n == 1 ? 0 : (~0ULL / n) + 1;
}

util::StatusOr<ShardMap> ShardMap::Parse(const std::string& spec) {
  std::vector<ShardEndpoint> endpoints;
  std::string_view rest = spec;
  while (true) {
    size_t comma = rest.find(',');
    std::string_view item = TrimSpaces(rest.substr(0, comma));
    if (item.empty()) {
      return util::Status::InvalidArgument(
          "shard map: empty endpoint in \"" + spec + "\"");
    }
    size_t colon = item.rfind(':');
    if (colon == std::string_view::npos || colon == 0) {
      return util::Status::InvalidArgument(
          "shard map: endpoint \"" + std::string(item) +
          "\" is not host:port");
    }
    long port;
    if (!util::ParseIntFlag(item.substr(colon + 1), 1, 65535, &port)) {
      return util::Status::InvalidArgument(
          "shard map: bad port in \"" + std::string(item) + "\"");
    }
    endpoints.push_back(
        ShardEndpoint{std::string(item.substr(0, colon)), static_cast<int>(port)});
    if (comma == std::string_view::npos) break;
    rest = rest.substr(comma + 1);
  }
  if (static_cast<int>(endpoints.size()) > kMaxShards) {
    return util::Status::InvalidArgument(
        "shard map: more than " + std::to_string(kMaxShards) + " shards");
  }
  return ShardMap(std::move(endpoints));
}

std::string ShardMap::Serialise() const {
  std::string out;
  for (const ShardEndpoint& endpoint : endpoints_) {
    if (!out.empty()) out += ',';
    out += endpoint.host + ":" + std::to_string(endpoint.port);
  }
  return out;
}

uint64_t ShardMap::Digest() const {
  // FNV-1a over the canonical serialisation, then mixed: equal maps — and
  // only equal maps — digest equally.
  uint64_t h = 1469598103934665603ULL;
  const std::string text =
      std::to_string(endpoints_.size()) + ";" + Serialise();
  for (unsigned char c : text) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return util::Mix64(h);
}

std::string ShardMap::DigestHex() const {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(Digest()));
  return std::string(buf);
}

int ShardMap::IndexFor(const Fingerprint& fp) const {
  if (step_ == 0) return 0;
  const uint64_t index = fp.hi / step_;
  const uint64_t last = endpoints_.size() - 1;
  return static_cast<int>(index < last ? index : last);
}

FingerprintRange ShardMap::RangeFor(int index) const {
  HTD_CHECK_GE(index, 0);
  HTD_CHECK_LT(index, num_shards());
  if (step_ == 0) return FingerprintRange{};
  FingerprintRange range;
  range.first_hi = static_cast<uint64_t>(index) * step_;
  range.last_hi = index == num_shards() - 1
                      ? ~0ULL
                      : static_cast<uint64_t>(index + 1) * step_ - 1;
  return range;
}

}  // namespace htd::service
