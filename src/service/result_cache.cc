#include "service/result_cache.h"

#include <algorithm>
#include <memory>

#include "util/logging.h"

namespace htd::service {

ResultCache::ResultCache(size_t capacity, int num_shards) {
  HTD_CHECK_GE(capacity, 1u);
  num_shards = std::clamp<int>(num_shards, 1, static_cast<int>(capacity));
  per_shard_capacity_ = (capacity + num_shards - 1) / num_shards;
  shards_.reserve(num_shards);
  for (int i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

ResultCache::Shard& ResultCache::ShardFor(const CacheKey& key) {
  return *shards_[CacheKeyHash{}(key) % shards_.size()];
}

std::optional<SolveResult> ResultCache::Lookup(const CacheKey& key) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second->result;
}

void ResultCache::Insert(const CacheKey& key, const SolveResult& result) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    it->second->result = result;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  if (shard.lru.size() >= per_shard_capacity_) {
    const Entry& victim = shard.lru.back();
    shard.index.erase(victim.key);
    shard.lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
    entries_.fetch_sub(1, std::memory_order_relaxed);
  }
  shard.lru.push_front(Entry{key, result});
  shard.index.emplace(key, shard.lru.begin());
  insertions_.fetch_add(1, std::memory_order_relaxed);
  entries_.fetch_add(1, std::memory_order_relaxed);
}

void ResultCache::ForEach(
    const std::function<void(const CacheKey&, const SolveResult&)>& fn,
    const FingerprintRange* range) {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    for (const Entry& entry : shard->lru) {
      if (range != nullptr && !range->Contains(entry.key.fingerprint)) continue;
      fn(entry.key, entry.result);
    }
  }
}

void ResultCache::Clear() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    entries_.fetch_sub(shard->lru.size(), std::memory_order_relaxed);
    shard->lru.clear();
    shard->index.clear();
  }
}

ResultCache::Stats ResultCache::GetStats() const {
  Stats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.insertions = insertions_.load(std::memory_order_relaxed);
  stats.evictions = evictions_.load(std::memory_order_relaxed);
  stats.entries = entries_.load(std::memory_order_relaxed);
  stats.capacity = per_shard_capacity_ * shards_.size();
  return stats;
}

size_t ResultCache::num_entries() const {
  return entries_.load(std::memory_order_relaxed);
}

}  // namespace htd::service
