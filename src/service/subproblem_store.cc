#include "service/subproblem_store.h"

#include <algorithm>
#include <utility>

#include "util/logging.h"

namespace htd::service {

namespace {

/// True iff `sub` ⊆ `super`; both sorted, duplicate-free trace lists.
bool TraceSubset(const std::vector<std::vector<int>>& sub,
                 const std::vector<std::vector<int>>& super) {
  return sub.size() <= super.size() &&
         std::includes(super.begin(), super.end(), sub.begin(), sub.end());
}

size_t TraceBytes(const std::vector<std::vector<int>>& traces) {
  size_t bytes = sizeof(traces);
  for (const std::vector<int>& trace : traces) {
    bytes += sizeof(trace) + trace.size() * sizeof(int);
  }
  return bytes;
}

/// Canonical trace of a base edge on V(H'): sorted canonical ids of its
/// member vertices inside the component; empty if disjoint from it.
std::vector<int> CanonicalTrace(const Hypergraph& graph,
                                const SubproblemCanonicalForm& form, int e) {
  std::vector<int> trace;
  for (int v : graph.edge_vertex_list(e)) {
    int rank = form.base_vertex_rank[v];
    if (rank >= 0) trace.push_back(rank);
  }
  std::sort(trace.begin(), trace.end());
  return trace;
}

/// Index of `trace` in the sorted unique list, or -1.
int TraceIndex(const std::vector<std::vector<int>>& traces,
               const std::vector<int>& trace) {
  auto it = std::lower_bound(traces.begin(), traces.end(), trace);
  if (it == traces.end() || *it != trace) return -1;
  return static_cast<int>(it - traces.begin());
}

}  // namespace

SubproblemStore::SubproblemStore(Options options) : options_(options) {
  HTD_CHECK_GE(options_.byte_budget, 1u);
  options_.num_shards = std::max(1, options_.num_shards);
  options_.max_variants_per_key = std::max(1, options_.max_variants_per_key);
  per_shard_budget_ =
      (options_.byte_budget + options_.num_shards - 1) / options_.num_shards;
  shards_.reserve(options_.num_shards);
  for (int i = 0; i < options_.num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

SubproblemStore::Key SubproblemStore::MakeKey(const Hypergraph& graph,
                                              const SpecialEdgeRegistry& registry,
                                              const ExtendedSubhypergraph& comp,
                                              const util::DynamicBitset& conn,
                                              const util::DynamicBitset& allowed,
                                              int k) {
  Key key;
  key.k = k;
  key.form = FingerprintSubhypergraph(graph, registry, comp, conn);
  key.fingerprint = key.form.fingerprint;

  // Distinct canonical traces of the allowed edges, each with one
  // representative base edge (duplicate traces are interchangeable as
  // λ-labels, so one representative suffices for decoding).
  std::vector<std::pair<std::vector<int>, int>> traced;
  allowed.ForEach([&](int e) {
    std::vector<int> trace = CanonicalTrace(graph, key.form, e);
    if (!trace.empty()) traced.emplace_back(std::move(trace), e);
  });
  std::sort(traced.begin(), traced.end());
  key.allowed_traces.reserve(traced.size());
  key.trace_edges.reserve(traced.size());
  for (auto& [trace, e] : traced) {
    if (!key.allowed_traces.empty() && key.allowed_traces.back() == trace) continue;
    key.allowed_traces.push_back(std::move(trace));
    key.trace_edges.push_back(e);
  }
  return key;
}

std::list<SubproblemStore::Entry>::iterator SubproblemStore::Touch(
    Shard& shard, const MapKey& key) {
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return it->second;
  }
  Entry entry;
  entry.key = key;
  entry.bytes = sizeof(Entry);
  shard.lru.push_front(std::move(entry));
  shard.index.emplace(key, shard.lru.begin());
  shard.bytes += shard.lru.front().bytes;
  bytes_.fetch_add(shard.lru.front().bytes, std::memory_order_relaxed);
  entries_.fetch_add(1, std::memory_order_relaxed);
  return shard.lru.begin();
}

void SubproblemStore::ReaccountBytes(Shard& shard, Entry& entry) {
  const size_t before = entry.bytes;
  entry.bytes = sizeof(Entry);
  for (const NegativeVariant& variant : entry.negatives) {
    entry.bytes += TraceBytes(variant.traces);
  }
  for (const auto& variant : entry.positives) {
    entry.bytes += sizeof(PositiveVariant) + TraceBytes(variant->traces) +
                   variant->fragment.ApproxBytes();
  }
  shard.bytes += entry.bytes - before;
  if (entry.bytes >= before) {
    bytes_.fetch_add(entry.bytes - before, std::memory_order_relaxed);
  } else {
    bytes_.fetch_sub(before - entry.bytes, std::memory_order_relaxed);
  }
}

void SubproblemStore::EvictOver(Shard& shard) {
  while (shard.bytes > per_shard_budget_ && shard.lru.size() > 1) {
    const Entry& victim = shard.lru.back();
    shard.bytes -= victim.bytes;
    bytes_.fetch_sub(victim.bytes, std::memory_order_relaxed);
    entries_.fetch_sub(1, std::memory_order_relaxed);
    evictions_.fetch_add(1, std::memory_order_relaxed);
    shard.index.erase(victim.key);
    shard.lru.pop_back();
  }
}

SubproblemStore::Hit SubproblemStore::Lookup(const Key& key, const Hypergraph& graph,
                                             Fragment* fragment) {
  probes_.fetch_add(1, std::memory_order_relaxed);

  // Take a reference to a matching positive variant; decode after unlocking
  // (variants are immutable once published, shared_ptr keeps the one we
  // hold alive across eviction).
  std::shared_ptr<const PositiveVariant> positive;
  bool found_negative = false;
  bool cross_k = false;

  // Probes the ⟨key.fingerprint, kk⟩ entry. A recorded failure with a ⊇
  // allowed set dominates (the query's search space is a subset of the
  // exhausted one); a recorded fragment whose used traces are ⊆ the query's
  // allowed traces dominates (every λ-trace it needs is available). Returns
  // true on a hit of either polarity.
  auto probe = [&](int kk, bool negatives, bool positives, bool touch) {
    MapKey map_key{key.fingerprint, kk};
    Shard& shard = ShardFor(map_key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.index.find(map_key);
    if (it == shard.index.end()) return false;
    if (touch) shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    Entry& entry = *it->second;
    if (negatives) {
      for (const NegativeVariant& variant : entry.negatives) {
        if (TraceSubset(key.allowed_traces, variant.traces)) {
          found_negative = true;
          return true;
        }
      }
    }
    if (positives) {
      for (const auto& variant : entry.positives) {
        if (TraceSubset(variant->traces, key.allowed_traces)) {
          positive = variant;
          return true;
        }
      }
    }
    return false;
  };

  if (!probe(key.k, /*negatives=*/true, /*positives=*/true, /*touch=*/true)) {
    // Width-dominance fallback over the other k values ever inserted for
    // any key: failures at k' > k (harder width, ⊇ search space already
    // exhausted), fragments at k' < k (their width bound only tightens).
    // Ascending bit order tries the smallest recorded width first for
    // fragments; cross-k probes don't touch LRU positions.
    const uint64_t mask = k_seen_mask_.load(std::memory_order_acquire);
    for (int bit = 0; bit < 64 && !found_negative && positive == nullptr;
         ++bit) {
      if ((mask & (uint64_t{1} << bit)) == 0) continue;
      const int kk = bit + 1;
      if (kk == key.k) continue;
      if (probe(kk, /*negatives=*/kk > key.k, /*positives=*/kk < key.k,
                /*touch=*/false)) {
        cross_k = true;
      }
    }
  }

  if (found_negative) {
    negative_hits_.fetch_add(1, std::memory_order_relaxed);
    if (cross_k) cross_k_negative_hits_.fetch_add(1, std::memory_order_relaxed);
    return Hit::kNegative;
  }
  if (positive != nullptr && fragment == nullptr) {
    positive_hits_.fetch_add(1, std::memory_order_relaxed);
    if (cross_k) cross_k_positive_hits_.fetch_add(1, std::memory_order_relaxed);
    return Hit::kPositive;
  }
  if (positive == nullptr) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return Hit::kMiss;
  }

  // Decode into the caller's ids. Recorded trace index → query trace index
  // by merging the two sorted lists (recorded ⊆ query holds by the check
  // above), then query trace index → representative allowed edge.
  std::vector<int> query_index_of(positive->traces.size(), -1);
  {
    size_t q = 0;
    for (size_t r = 0; r < positive->traces.size(); ++r) {
      while (q < key.allowed_traces.size() &&
             key.allowed_traces[q] < positive->traces[r]) {
        ++q;
      }
      if (q < key.allowed_traces.size() &&
          key.allowed_traces[q] == positive->traces[r]) {
        query_index_of[r] = static_cast<int>(q);
      }
    }
  }
  auto edge_of_token = [&](int token) -> int {
    if (token < 0 || token >= static_cast<int>(query_index_of.size())) return -1;
    int q = query_index_of[token];
    return q < 0 ? -1 : key.trace_edges[q];
  };
  auto vertex_of_token = [&](int token) -> int {
    if (token < 0 || token >= static_cast<int>(key.form.canonical_vertices.size())) {
      return -1;
    }
    return key.form.canonical_vertices[token];
  };
  auto special_of_token = [&](int token) -> int {
    if (token < 0 || token >= static_cast<int>(key.form.special_order.size())) {
      return -1;
    }
    return key.form.special_order[token];
  };
  std::optional<Fragment> decoded =
      DecodeFragment(positive->fragment, graph.num_vertices(), edge_of_token,
                     vertex_of_token, special_of_token);
  if (!decoded.has_value()) {
    // Corrupt or non-decodable entry (should not happen): treat as a miss.
    misses_.fetch_add(1, std::memory_order_relaxed);
    return Hit::kMiss;
  }
  positive_hits_.fetch_add(1, std::memory_order_relaxed);
  if (cross_k) cross_k_positive_hits_.fetch_add(1, std::memory_order_relaxed);
  *fragment = std::move(*decoded);
  return Hit::kPositive;
}

void SubproblemStore::InsertNegative(const Key& key) {
  InsertNegativeVariant(MapKey{key.fingerprint, key.k}, key.allowed_traces);
}

void SubproblemStore::InsertNegativeVariant(
    const MapKey& map_key, const std::vector<std::vector<int>>& traces) {
  Shard& shard = ShardFor(map_key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  Entry& entry = *Touch(shard, map_key);
  for (const NegativeVariant& variant : entry.negatives) {
    if (TraceSubset(traces, variant.traces)) {
      rejected_inserts_.fetch_add(1, std::memory_order_relaxed);
      return;  // already dominated
    }
  }
  // Keep the antichain: drop failure sets the new one dominates.
  std::erase_if(entry.negatives, [&](const NegativeVariant& variant) {
    return TraceSubset(variant.traces, traces);
  });
  entry.negatives.push_back(NegativeVariant{traces});
  if (static_cast<int>(entry.negatives.size()) > options_.max_variants_per_key) {
    entry.negatives.erase(entry.negatives.begin());
  }
  ReaccountBytes(shard, entry);
  negative_inserts_.fetch_add(1, std::memory_order_relaxed);
  if (map_key.k >= 1 && map_key.k <= 64) {
    k_seen_mask_.fetch_or(uint64_t{1} << (map_key.k - 1),
                          std::memory_order_release);
  }
  EvictOver(shard);
}

void SubproblemStore::InsertPositive(const Key& key, const Hypergraph& graph,
                                     const Fragment& fragment) {
  // Encode outside the lock: λ edges as allowed-trace indices, χ as
  // canonical vertex ids, special leaves as canonical special indices.
  auto edge_token = [&](int e) -> int {
    if (e < 0 || e >= graph.num_edges()) return -1;
    return TraceIndex(key.allowed_traces, CanonicalTrace(graph, key.form, e));
  };
  auto vertex_token = [&](int v) -> int {
    if (v < 0 || v >= static_cast<int>(key.form.base_vertex_rank.size())) return -1;
    return key.form.base_vertex_rank[v];
  };
  auto special_token = [&](int s) -> int {
    for (size_t i = 0; i < key.form.special_order.size(); ++i) {
      if (key.form.special_order[i] == s) return static_cast<int>(i);
    }
    return -1;
  };
  std::optional<PortableFragment> portable =
      EncodeFragment(fragment, edge_token, vertex_token, special_token);
  if (!portable.has_value()) {
    rejected_inserts_.fetch_add(1, std::memory_order_relaxed);
    return;
  }

  // Shrink the recorded allowed set to the traces the fragment's λ-labels
  // actually use: the smaller the recorded set, the more future queries it
  // dominates (they only need ⊇ what the fragment needs). λ tokens are
  // remapped from allowed-trace indices to used-trace indices.
  std::vector<int> used;  // indices into key.allowed_traces, sorted unique
  for (const PortableFragmentNode& node : portable->nodes) {
    used.insert(used.end(), node.lambda.begin(), node.lambda.end());
  }
  std::sort(used.begin(), used.end());
  used.erase(std::unique(used.begin(), used.end()), used.end());
  auto variant = std::make_shared<PositiveVariant>();
  variant->traces.reserve(used.size());
  std::vector<int> used_index_of(key.allowed_traces.size(), -1);
  for (size_t i = 0; i < used.size(); ++i) {
    used_index_of[used[i]] = static_cast<int>(i);
    variant->traces.push_back(key.allowed_traces[used[i]]);
  }
  for (PortableFragmentNode& node : portable->nodes) {
    for (int& token : node.lambda) token = used_index_of[token];
  }
  variant->fragment = std::move(*portable);

  InsertPositiveVariant(MapKey{key.fingerprint, key.k}, std::move(variant));
}

void SubproblemStore::InsertPositiveVariant(
    const MapKey& map_key, std::shared_ptr<PositiveVariant> variant) {
  Shard& shard = ShardFor(map_key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  Entry& entry = *Touch(shard, map_key);
  for (const auto& existing : entry.positives) {
    if (TraceSubset(existing->traces, variant->traces)) {
      rejected_inserts_.fetch_add(1, std::memory_order_relaxed);
      return;  // an entry with a smaller used set already serves this
    }
  }
  // Keep the antichain ⊆-minimal: drop entries the new one undercuts.
  std::erase_if(entry.positives, [&](const auto& existing) {
    return TraceSubset(variant->traces, existing->traces);
  });
  entry.positives.push_back(std::move(variant));
  if (static_cast<int>(entry.positives.size()) > options_.max_variants_per_key) {
    entry.positives.erase(entry.positives.begin());
  }
  ReaccountBytes(shard, entry);
  positive_inserts_.fetch_add(1, std::memory_order_relaxed);
  if (map_key.k >= 1 && map_key.k <= 64) {
    k_seen_mask_.fetch_or(uint64_t{1} << (map_key.k - 1),
                          std::memory_order_release);
  }
  EvictOver(shard);
}

std::vector<SubproblemStore::ExportedEntry> SubproblemStore::Export(
    const FingerprintRange* range) {
  std::vector<ExportedEntry> exported;
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    for (const Entry& entry : shard->lru) {
      if (range != nullptr && !range->Contains(entry.key.fingerprint)) continue;
      ExportedEntry out;
      out.fingerprint = entry.key.fingerprint;
      out.k = entry.key.k;
      out.negatives.reserve(entry.negatives.size());
      for (const NegativeVariant& variant : entry.negatives) {
        out.negatives.push_back(variant.traces);
      }
      out.positives.reserve(entry.positives.size());
      for (const auto& variant : entry.positives) {
        out.positives.push_back(ExportedPositive{variant->traces, variant->fragment});
      }
      exported.push_back(std::move(out));
    }
  }
  return exported;
}

bool SubproblemStore::Import(const ExportedEntry& entry,
                             const FingerprintRange* range) {
  if (range != nullptr && !range->Contains(entry.fingerprint)) return false;
  MapKey map_key{entry.fingerprint, entry.k};
  for (const auto& traces : entry.negatives) {
    InsertNegativeVariant(map_key, traces);
  }
  for (const ExportedPositive& positive : entry.positives) {
    auto variant = std::make_shared<PositiveVariant>();
    variant->traces = positive.traces;
    variant->fragment = positive.fragment;
    InsertPositiveVariant(map_key, std::move(variant));
  }
  return true;
}

size_t SubproblemStore::CompactExported(std::vector<ExportedEntry>* entries) {
  // Group entries by fingerprint without reordering them (snapshots keep
  // their LRU layout). Only fingerprints recorded at several widths can
  // have cross-k-dominated variants — same-k antichains are maintained at
  // insert time.
  std::unordered_map<Fingerprint, std::vector<size_t>, FingerprintHash> groups;
  for (size_t i = 0; i < entries->size(); ++i) {
    groups[(*entries)[i].fingerprint].push_back(i);
  }
  size_t dropped = 0;
  for (const auto& [fingerprint, members] : groups) {
    if (members.size() < 2) continue;
    for (size_t a : members) {
      ExportedEntry& entry = (*entries)[a];
      // A failure at k is dominated by a ⊇ failure at k' > k: the larger
      // search space at the harder width was already exhausted. Dominance
      // is transitive, so consulting variants this pass will itself drop is
      // sound — their dominator survives and dominates too.
      dropped += std::erase_if(
          entry.negatives, [&](const std::vector<std::vector<int>>& traces) {
            for (size_t b : members) {
              if ((*entries)[b].k <= entry.k) continue;
              for (const auto& other : (*entries)[b].negatives) {
                if (TraceSubset(traces, other)) return true;
              }
            }
            return false;
          });
      // A fragment at k is dominated by a ⊆-trace fragment at k' < k: the
      // tighter width bound serves every query this one serves.
      dropped += std::erase_if(entry.positives, [&](const ExportedPositive& pos) {
        for (size_t b : members) {
          if ((*entries)[b].k >= entry.k) continue;
          for (const ExportedPositive& other : (*entries)[b].positives) {
            if (TraceSubset(other.traces, pos.traces)) return true;
          }
        }
        return false;
      });
    }
  }
  std::erase_if(*entries, [](const ExportedEntry& entry) {
    return entry.negatives.empty() && entry.positives.empty();
  });
  return dropped;
}

void SubproblemStore::Clear() {
  // Advisory reset: a racing insert may leave the mask under-approximated,
  // which only costs cross-k hits, never correctness.
  k_seen_mask_.store(0, std::memory_order_release);
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    entries_.fetch_sub(shard->lru.size(), std::memory_order_relaxed);
    bytes_.fetch_sub(shard->bytes, std::memory_order_relaxed);
    shard->bytes = 0;
    shard->lru.clear();
    shard->index.clear();
  }
}

SubproblemStore::Stats SubproblemStore::GetStats() const {
  Stats stats;
  stats.probes = probes_.load(std::memory_order_relaxed);
  stats.negative_hits = negative_hits_.load(std::memory_order_relaxed);
  stats.positive_hits = positive_hits_.load(std::memory_order_relaxed);
  stats.cross_k_negative_hits =
      cross_k_negative_hits_.load(std::memory_order_relaxed);
  stats.cross_k_positive_hits =
      cross_k_positive_hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.negative_inserts = negative_inserts_.load(std::memory_order_relaxed);
  stats.positive_inserts = positive_inserts_.load(std::memory_order_relaxed);
  stats.rejected_inserts = rejected_inserts_.load(std::memory_order_relaxed);
  stats.evictions = evictions_.load(std::memory_order_relaxed);
  stats.entries = entries_.load(std::memory_order_relaxed);
  stats.bytes = bytes_.load(std::memory_order_relaxed);
  stats.byte_budget = options_.byte_budget;
  return stats;
}

size_t SubproblemStore::num_entries() const {
  return entries_.load(std::memory_order_relaxed);
}

}  // namespace htd::service
