#include "service/service.h"

#include <algorithm>
#include <utility>

#include "util/logging.h"

namespace htd::service {

DecompositionService::DecompositionService(ServiceOptions options)
    : options_(std::move(options)),
      executor_(options_.executor != nullptr ? options_.executor
                                             : &util::Executor::Global()) {
  auto factory = MakeSolverFactory(options_.solver_name);
  HTD_CHECK(factory.ok()) << factory.status().message();
  if (options_.enable_result_cache) {
    cache_ = std::make_unique<ResultCache>(std::max<size_t>(1, options_.cache_capacity),
                                           options_.cache_shards);
  }
  if (options_.enable_subproblem_store) {
    subproblem_store_ = std::make_unique<SubproblemStore>(options_.subproblem_store);
    // Handed to every solver the scheduler builds. Part of the config digest
    // below, so result-cache entries don't cross the store on/off boundary.
    options_.solve.subproblem_store = subproblem_store_.get();
  }
  scheduler_ = std::make_unique<BatchScheduler>(
      *executor_, std::move(*factory), options_.solve, cache_.get(),
      SolverConfigDigest(options_.solver_name, options_.solve), &metrics_);
  stage_parse_ = &metrics_.GetHistogram("htd_stage_seconds", "stage=\"parse\"");
  stage_serialise_ =
      &metrics_.GetHistogram("htd_stage_seconds", "stage=\"serialise\"");
  RegisterComponentMetrics();
}

void DecompositionService::RegisterComponentMetrics() {
  metrics_.SetHelp("htd_stage_seconds",
                   "Per-stage request latency (parse, fingerprint, cache, "
                   "schedule, solve, serialise).");
  // Registration order is the snapshot read order: derived counters come
  // before the totals they are bounded by (scheduler increments the total
  // first, so sampling the part first keeps part <= whole in any snapshot).
  metrics_.SetHelp("htd_scheduler_submitted_total", "Jobs accepted.");
  metrics_.RegisterCallback(
      "htd_scheduler_cache_hits_total", "", "counter",
      [this] { return static_cast<double>(scheduler_->GetStats().cache_hits); });
  metrics_.RegisterCallback(
      "htd_scheduler_dedup_joins_total", "", "counter",
      [this] { return static_cast<double>(scheduler_->GetStats().dedup_joins); });
  metrics_.RegisterCallback(
      "htd_scheduler_solves_total", "", "counter",
      [this] { return static_cast<double>(scheduler_->GetStats().solves); });
  metrics_.RegisterCallback(
      "htd_scheduler_completed_total", "", "counter",
      [this] { return static_cast<double>(scheduler_->GetStats().completed); });
  metrics_.RegisterCallback(
      "htd_scheduler_submitted_total", "", "counter",
      [this] { return static_cast<double>(scheduler_->GetStats().submitted); });
  metrics_.RegisterCallback(
      "htd_queue_depth", "", "gauge",
      [this] { return static_cast<double>(scheduler_->queue_depth()); });
  metrics_.RegisterCallback(
      "htd_outstanding_jobs", "", "gauge",
      [this] { return static_cast<double>(scheduler_->outstanding_jobs()); });
  // Executor fleet health: tasks waiting, workers executing, and how often
  // idle workers had to steal (a high steal rate with low queue depth means
  // the fleet is load-balancing fine; with high depth it means starvation).
  metrics_.RegisterCallback(
      "htd_executor_queue_depth", "", "gauge",
      [this] { return static_cast<double>(executor_->queue_depth()); });
  metrics_.RegisterCallback(
      "htd_executor_workers_busy", "", "gauge",
      [this] { return static_cast<double>(executor_->workers_busy()); });
  metrics_.RegisterCallback(
      "htd_executor_workers", "", "gauge",
      [this] { return static_cast<double>(executor_->num_workers()); });
  metrics_.RegisterCallback(
      "htd_executor_steals_total", "", "counter",
      [this] { return static_cast<double>(executor_->steals_total()); });
  if (cache_ != nullptr) {
    metrics_.RegisterCallback(
        "htd_cache_hits_total", "", "counter",
        [this] { return static_cast<double>(cache_->GetStats().hits); });
    metrics_.RegisterCallback(
        "htd_cache_misses_total", "", "counter",
        [this] { return static_cast<double>(cache_->GetStats().misses); });
    metrics_.RegisterCallback(
        "htd_cache_evictions_total", "", "counter",
        [this] { return static_cast<double>(cache_->GetStats().evictions); });
    metrics_.RegisterCallback(
        "htd_cache_insertions_total", "", "counter",
        [this] { return static_cast<double>(cache_->GetStats().insertions); });
    metrics_.RegisterCallback(
        "htd_cache_entries", "", "gauge",
        [this] { return static_cast<double>(cache_->GetStats().entries); });
    metrics_.RegisterCallback(
        "htd_cache_capacity", "", "gauge",
        [this] { return static_cast<double>(cache_->GetStats().capacity); });
  }
  if (subproblem_store_ != nullptr) {
    metrics_.RegisterCallback("htd_store_negative_hits_total", "", "counter",
                              [this] {
                                return static_cast<double>(
                                    subproblem_store_->GetStats().negative_hits);
                              });
    metrics_.RegisterCallback("htd_store_positive_hits_total", "", "counter",
                              [this] {
                                return static_cast<double>(
                                    subproblem_store_->GetStats().positive_hits);
                              });
    metrics_.RegisterCallback(
        "htd_store_misses_total", "", "counter",
        [this] {
          return static_cast<double>(subproblem_store_->GetStats().misses);
        });
    metrics_.RegisterCallback(
        "htd_store_probes_total", "", "counter",
        [this] {
          return static_cast<double>(subproblem_store_->GetStats().probes);
        });
    metrics_.RegisterCallback(
        "htd_store_entries", "", "gauge",
        [this] {
          return static_cast<double>(subproblem_store_->GetStats().entries);
        });
    metrics_.RegisterCallback(
        "htd_store_bytes", "", "gauge",
        [this] {
          return static_cast<double>(subproblem_store_->GetStats().bytes);
        });
  }
}

void DecompositionService::ObserveParseSeconds(double seconds) {
  stage_parse_->Observe(seconds);
}

void DecompositionService::ObserveSerialiseSeconds(double seconds) {
  stage_serialise_->Observe(seconds);
}

DecompositionService::~DecompositionService() = default;

util::StatusOr<std::unique_ptr<DecompositionService>> DecompositionService::Create(
    ServiceOptions options) {
  auto factory = MakeSolverFactory(options.solver_name);
  if (!factory.ok()) return factory.status();
  if (options.num_workers < 1) {
    return util::Status::InvalidArgument("num_workers must be >= 1");
  }
  if (options.solve.num_threads < 0) {
    return util::Status::InvalidArgument(
        "solve.num_threads must be >= 0 (0 = batch-aware auto)");
  }
  if (options.enable_result_cache && options.cache_capacity < 1) {
    return util::Status::InvalidArgument("cache_capacity must be >= 1");
  }
  if (options.enable_subproblem_store) {
    if (options.subproblem_store.byte_budget < 1) {
      return util::Status::InvalidArgument(
          "subproblem_store.byte_budget must be >= 1");
    }
    if (options.subproblem_store.min_subproblem_size < 0) {
      return util::Status::InvalidArgument(
          "subproblem_store.min_subproblem_size must be >= 0");
    }
  }
  if (options.solve.subproblem_store != nullptr) {
    return util::Status::InvalidArgument(
        "solve.subproblem_store is service-owned; use enable_subproblem_store");
  }
  return std::make_unique<DecompositionService>(std::move(options));
}

std::future<JobResult> DecompositionService::Submit(const Hypergraph& graph, int k) {
  return Submit(graph, k, options_.default_timeout_seconds);
}

std::future<JobResult> DecompositionService::Submit(const Hypergraph& graph, int k,
                                                    double timeout_seconds) {
  return Submit(graph, k, timeout_seconds, util::TraceParent{});
}

std::future<JobResult> DecompositionService::Submit(const Hypergraph& graph, int k,
                                                    double timeout_seconds,
                                                    util::TraceParent trace,
                                                    util::Executor::Lane lane) {
  JobSpec spec;
  spec.graph = &graph;
  spec.k = k;
  spec.timeout_seconds = timeout_seconds;
  spec.trace = trace;
  spec.lane = lane;
  return scheduler_->Submit(spec);
}

std::vector<std::future<JobResult>> DecompositionService::SubmitBatch(
    const std::vector<JobSpec>& jobs) {
  return scheduler_->SubmitBatch(jobs);
}

JobResult DecompositionService::Solve(const Hypergraph& graph, int k) {
  return Submit(graph, k).get();
}

void DecompositionService::CancelAll() { scheduler_->CancelAll(); }

void DecompositionService::Drain() { scheduler_->Drain(); }

ResultCache::Stats DecompositionService::cache_stats() const {
  if (cache_ == nullptr) return ResultCache::Stats{};
  return cache_->GetStats();
}

BatchScheduler::Stats DecompositionService::scheduler_stats() const {
  return scheduler_->GetStats();
}

int DecompositionService::queue_depth() const { return scheduler_->queue_depth(); }

uint64_t DecompositionService::outstanding_jobs() const {
  return scheduler_->outstanding_jobs();
}

SubproblemStore::Stats DecompositionService::subproblem_stats() const {
  if (subproblem_store_ == nullptr) return SubproblemStore::Stats{};
  return subproblem_store_->GetStats();
}

}  // namespace htd::service
