#include "service/anti_entropy.h"

#include <algorithm>
#include <cstdio>
#include <string_view>

#include "util/hash.h"

namespace htd::service {

namespace {

constexpr std::string_view kMagic = "HTDDIGEST1";
constexpr int kMaxSlices = 65536;

// Distinct seeds so a cache entry and a store entry with the same
// fingerprint can never cancel each other out of the XOR fold.
constexpr uint64_t kCacheSeed = 0x68746463616368ULL;  // "htdcach"
constexpr uint64_t kStoreSeed = 0x68746473746f72ULL;  // "htdstor"

uint64_t HashTraces(const std::vector<std::vector<int>>& traces) {
  // Trace lists are canonical (sorted, duplicate-free), so a plain sequence
  // hash is already order-stable.
  uint64_t h = util::Mix64(traces.size());
  for (const std::vector<int>& trace : traces) {
    h = util::HashCombine(h, trace.size());
    for (int v : trace) h = util::HashCombine(h, static_cast<uint64_t>(v));
  }
  return h;
}

uint64_t CacheEntryHash(const CacheKey& key) {
  uint64_t h = util::HashCombine(kCacheSeed, key.fingerprint.hi);
  h = util::HashCombine(h, key.fingerprint.lo);
  h = util::HashCombine(h, static_cast<uint64_t>(key.k));
  return util::HashCombine(h, key.config_digest);
}

uint64_t StoreEntryHash(const SubproblemStore::ExportedEntry& entry) {
  uint64_t h = util::HashCombine(kStoreSeed, entry.fingerprint.hi);
  h = util::HashCombine(h, entry.fingerprint.lo);
  h = util::HashCombine(h, static_cast<uint64_t>(entry.k));
  // Variant antichains are unordered sets: XOR-fold each polarity so two
  // replicas that inserted the same variants in different orders agree.
  uint64_t negatives = 0;
  for (const auto& traces : entry.negatives) {
    negatives ^= util::Mix64(HashTraces(traces));
  }
  uint64_t positives = 0;
  for (const SubproblemStore::ExportedPositive& positive : entry.positives) {
    positives ^= util::Mix64(HashTraces(positive.traces));
  }
  h = util::HashCombine(h, negatives);
  return util::HashCombine(h, positives);
}

bool ParseHex16(std::string_view text, uint64_t* out) {
  if (text.size() != 16) return false;
  uint64_t value = 0;
  for (char c : text) {
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else {
      return false;
    }
    value = (value << 4) | static_cast<uint64_t>(digit);
  }
  *out = value;
  return true;
}

bool ParseU64(std::string_view text, uint64_t* out) {
  if (text.empty() || text.size() > 20) return false;
  uint64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    const uint64_t digit = static_cast<uint64_t>(c - '0');
    if (value > (~0ULL - digit) / 10) return false;
    value = value * 10 + digit;
  }
  *out = value;
  return true;
}

/// Splits on single spaces; rejects leading/trailing/doubled separators.
bool SplitTokens(std::string_view line, std::vector<std::string_view>* out) {
  out->clear();
  while (!line.empty()) {
    const size_t space = line.find(' ');
    std::string_view token = line.substr(0, space);
    if (token.empty()) return false;
    out->push_back(token);
    if (space == std::string_view::npos) return true;
    line = line.substr(space + 1);
  }
  return false;  // empty line or trailing space
}

std::string Hex16(uint64_t value) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(value));
  return std::string(buf);
}

}  // namespace

std::vector<FingerprintRange> SplitRange(const FingerprintRange& range,
                                         int slices) {
  slices = std::max(1, slices);
  // floor(span / slices) + 1 hi values per slice covers the range; the last
  // slice absorbs the remainder and trailing empty slices are dropped.
  const uint64_t step = (range.last_hi - range.first_hi) /
                            static_cast<uint64_t>(slices) +
                        1;
  std::vector<FingerprintRange> out;
  uint64_t lo = range.first_hi;
  for (int i = 0; i < slices; ++i) {
    FingerprintRange slice;
    slice.first_hi = lo;
    if (i == slices - 1 || range.last_hi - lo < step) {
      slice.last_hi = range.last_hi;
      out.push_back(slice);
      break;
    }
    slice.last_hi = lo + step - 1;
    out.push_back(slice);
    lo = slice.last_hi + 1;
  }
  return out;
}

DigestSummary ComputeDigestSummary(ResultCache* cache, SubproblemStore* store,
                                   uint64_t config_digest,
                                   const FingerprintRange& range, int slices) {
  DigestSummary summary;
  summary.config_digest = config_digest;
  const std::vector<FingerprintRange> ranges = SplitRange(range, slices);
  summary.slices.resize(ranges.size());
  for (size_t i = 0; i < ranges.size(); ++i) summary.slices[i].range = ranges[i];

  const uint64_t step = ranges[0].last_hi - ranges[0].first_hi + 1;
  auto slice_of = [&](const Fingerprint& fp) -> DigestSlice& {
    // Mirrors the SplitRange boundaries: fixed-width slices, tail clamped.
    size_t index = step == 0 ? 0 : (fp.hi - range.first_hi) / step;
    if (index >= summary.slices.size()) index = summary.slices.size() - 1;
    return summary.slices[index];
  };

  if (cache != nullptr) {
    cache->ForEach(
        [&](const CacheKey& key, const SolveResult&) {
          DigestSlice& slice = slice_of(key.fingerprint);
          slice.digest ^= CacheEntryHash(key);
          ++slice.cache_entries;
        },
        &range);
  }
  if (store != nullptr) {
    // Digest the compacted view: a replica that already dropped a
    // cross-k-dominated variant at save time must digest equal to one that
    // still holds it (they answer the same queries).
    std::vector<SubproblemStore::ExportedEntry> exported = store->Export(&range);
    SubproblemStore::CompactExported(&exported);
    for (const SubproblemStore::ExportedEntry& entry : exported) {
      DigestSlice& slice = slice_of(entry.fingerprint);
      slice.digest ^= StoreEntryHash(entry);
      ++slice.store_entries;
    }
  }
  return summary;
}

std::string RenderDigestSummary(const DigestSummary& summary) {
  std::string out(kMagic);
  out += ' ';
  out += Hex16(summary.config_digest);
  out += ' ';
  out += std::to_string(summary.slices.size());
  out += '\n';
  for (const DigestSlice& slice : summary.slices) {
    out += Hex16(slice.range.first_hi);
    out += '-';
    out += Hex16(slice.range.last_hi);
    out += ' ';
    out += Hex16(slice.digest);
    out += ' ';
    out += std::to_string(slice.cache_entries);
    out += ' ';
    out += std::to_string(slice.store_entries);
    out += '\n';
  }
  return out;
}

util::StatusOr<DigestSummary> ParseDigestSummary(const std::string& text) {
  auto bad = [](const std::string& what) {
    return util::Status::InvalidArgument("digest response: " + what);
  };

  // Split into lines; exactly one '\n' after every line, nothing after the
  // last one.
  std::vector<std::string_view> lines;
  std::string_view rest = text;
  while (!rest.empty()) {
    const size_t newline = rest.find('\n');
    if (newline == std::string_view::npos) return bad("unterminated line");
    lines.push_back(rest.substr(0, newline));
    rest = rest.substr(newline + 1);
  }
  if (lines.empty()) return bad("empty");

  std::vector<std::string_view> tokens;
  if (!SplitTokens(lines[0], &tokens) || tokens.size() != 3 ||
      tokens[0] != kMagic) {
    return bad("bad header line");
  }
  DigestSummary summary;
  uint64_t num_slices;
  if (!ParseHex16(tokens[1], &summary.config_digest)) {
    return bad("bad config digest");
  }
  if (!ParseU64(tokens[2], &num_slices) || num_slices < 1 ||
      num_slices > static_cast<uint64_t>(kMaxSlices)) {
    return bad("bad slice count");
  }
  if (lines.size() - 1 != num_slices) {
    return bad("slice count " + std::to_string(num_slices) + " but " +
               std::to_string(lines.size() - 1) + " slice lines");
  }

  summary.slices.reserve(num_slices);
  for (size_t i = 1; i < lines.size(); ++i) {
    if (!SplitTokens(lines[i], &tokens) || tokens.size() != 4) {
      return bad("bad slice line " + std::to_string(i));
    }
    DigestSlice slice;
    const std::string_view span = tokens[0];
    if (span.size() != 33 || span[16] != '-' ||
        !ParseHex16(span.substr(0, 16), &slice.range.first_hi) ||
        !ParseHex16(span.substr(17), &slice.range.last_hi) ||
        slice.range.first_hi > slice.range.last_hi) {
      return bad("bad slice range in line " + std::to_string(i));
    }
    if (!summary.slices.empty()) {
      const FingerprintRange& prev = summary.slices.back().range;
      if (prev.last_hi == ~0ULL || slice.range.first_hi != prev.last_hi + 1) {
        return bad("slices not contiguous at line " + std::to_string(i));
      }
    }
    if (!ParseHex16(tokens[1], &slice.digest) ||
        !ParseU64(tokens[2], &slice.cache_entries) ||
        !ParseU64(tokens[3], &slice.store_entries)) {
      return bad("bad slice fields in line " + std::to_string(i));
    }
    summary.slices.push_back(slice);
  }
  return summary;
}

}  // namespace htd::service
