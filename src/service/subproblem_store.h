// Cross-instance subproblem memoization store.
//
// det-k-decomp owes its sequential speed to "extensive caching" of
// subproblem outcomes, which the paper (§1) identifies as the reason it
// parallelises badly. core/negative_cache.h reproduces that idea *within*
// one solve; this store generalises it across solves and across instances:
// subproblem outcomes ⟨E', Sp, Conn⟩ — negative (search space exhausted) AND
// positive (a reusable HD-fragment) — are keyed by the canonical fingerprint
// of the extended sub-hypergraph (service/canonical.h:
// FingerprintSubhypergraph, connector vertices as distinguished colours), so
// two isomorphic subproblems of two *different* instances share one entry.
// This is the same pruning that lets Gottlob & Samer's det-k (cs/0701083)
// and the Fischl-Gottlob-Pichler GHD framework (1611.01090) skip repeated
// components, lifted to a long-lived service component.
//
// Allowed-set dominance. Decompose(H', Conn, A) failing only proves that no
// fragment exists with λ-labels from A, and succeeding only exhibits one
// with λ-labels from A. Across instances the allowed set A is represented
// by its canonical *traces* — the distinct intersections of allowed edges
// with V(H'), in canonical vertex ids — because only those traces can
// influence the subproblem (a λ-label acts on the component through its
// trace; duplicate traces are interchangeable). A query with trace set T is
// answered by:
//   * a recorded failure with traces  T_rec ⊇ T  (smaller search space), or
//   * a recorded fragment with traces T_rec ⊆ T  (its λ-edges decode into
//     edges the query is allowed to use).
// Entries per key keep both families as antichains: ⊆-maximal failure
// trace sets, ⊆-minimal fragment trace sets.
//
// Width dominance. The same subsumption works across k: a failure recorded
// at width k proves failure for every k' <= k over a ⊆ allowed set (the
// search space only shrinks), and a fragment of width <= k serves every
// query with k' >= k over a ⊇ allowed set. Lookup therefore falls back to
// the other recorded k values of the same fingerprint (guided by a bitmask
// of widths ever inserted), and CompactExported drops variants that a
// different-k variant of the same fingerprint dominates — the save-time
// compaction of service/persistence.h and the convergence normal form of
// the anti-entropy digests (service/anti_entropy.h).
//
// Concurrency & eviction: the key space is striped over independently
// locked shards (the service/result_cache.h pattern); canonicalisation,
// encoding, and decoding all run outside the locks. Each shard evicts whole
// keys LRU-first under its slice of the byte budget; within a key, the
// per-polarity antichains are additionally capped so one popular key cannot
// grow without bound.
//
// Cross-solver soundness: "a width-≤k fragment of ⟨E', Sp, Conn⟩ with
// λ-labels from A exists" is a property of the subproblem, not of the
// solver, so LogKDecomp, DetKDecomp, and the hybrid can share one store in
// both directions. LogKDecompBasic (Algorithm 1 as printed) searches a
// normal-form-restricted space, so it only *consumes* entries (either
// polarity is a genuine fact about fragment existence) and never inserts.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "decomp/extended_subhypergraph.h"
#include "decomp/fragment_codec.h"
#include "decomp/special_edges.h"
#include "service/canonical.h"
#include "util/bitset.h"

namespace htd::service {

class SubproblemStore {
 public:
  struct Options {
    /// Total heap budget, split evenly across shards. See docs/SERVICE.md
    /// ("sizing the byte budget") for guidance.
    size_t byte_budget = size_t{64} << 20;
    int num_shards = 16;
    /// Subproblems with |E'| + |Sp| below this are solved rather than
    /// memoized: canonicalisation costs more than the search they'd save.
    int min_subproblem_size = 4;
    /// Cap on recorded allowed-set variants per key and polarity.
    int max_variants_per_key = 8;
  };

  struct Stats {
    uint64_t probes = 0;
    uint64_t negative_hits = 0;
    uint64_t positive_hits = 0;
    /// Hits served by an entry recorded at a different k (subsets of the
    /// negative_hits / positive_hits totals).
    uint64_t cross_k_negative_hits = 0;
    uint64_t cross_k_positive_hits = 0;
    uint64_t misses = 0;
    uint64_t negative_inserts = 0;
    uint64_t positive_inserts = 0;
    uint64_t rejected_inserts = 0;  ///< dominated duplicates + unencodable
    uint64_t evictions = 0;         ///< whole keys dropped for the budget
    size_t entries = 0;             ///< distinct ⟨fingerprint, k⟩ keys
    size_t bytes = 0;               ///< approximate resident bytes
    size_t byte_budget = 0;
  };

  /// One probe's canonical identity, computed once per Decompose call (the
  /// engines reuse it for the post-search insert). Plain data; no lock held.
  struct Key {
    Fingerprint fingerprint;  ///< of ⟨E', Sp, Conn⟩ with labels
    int k = 0;
    SubproblemCanonicalForm form;
    /// Distinct canonical traces of the allowed edges on V(H'), sorted.
    std::vector<std::vector<int>> allowed_traces;
    /// Representative base-graph edge id per trace (index-aligned).
    std::vector<int> trace_edges;
  };

  enum class Hit { kMiss, kNegative, kPositive };

  SubproblemStore() : SubproblemStore(Options()) {}
  explicit SubproblemStore(Options options);

  SubproblemStore(const SubproblemStore&) = delete;
  SubproblemStore& operator=(const SubproblemStore&) = delete;

  /// Cheap gate the engines call before paying for MakeKey.
  bool ShouldProbe(const ExtendedSubhypergraph& comp) const {
    return comp.size() >= options_.min_subproblem_size;
  }

  /// Canonicalises the subproblem and its allowed set. Pure; thread-safe.
  static Key MakeKey(const Hypergraph& graph, const SpecialEdgeRegistry& registry,
                     const ExtendedSubhypergraph& comp,
                     const util::DynamicBitset& conn,
                     const util::DynamicBitset& allowed, int k);

  /// Dominance lookup. On kPositive, `*fragment` (if non-null) receives the
  /// recorded fragment decoded into the caller's ids — λ over the caller's
  /// allowed edges, χ over the caller's vertex universe, special leaves over
  /// the caller's special-edge ids. Pass fragment == nullptr for
  /// decision-only callers (skips the decode). When the exact ⟨fingerprint,
  /// k⟩ entry misses, other recorded widths of the same fingerprint are
  /// probed under width dominance: failures recorded at k' > k, fragments
  /// recorded at k' < k (see the header comment).
  Hit Lookup(const Key& key, const Hypergraph& graph, Fragment* fragment);

  /// Records that the key's subproblem has no fragment with λ-labels from
  /// the key's allowed set.
  void InsertNegative(const Key& key);

  /// Records a fragment found for the key's subproblem. `graph` must be the
  /// instance the fragment's ids refer to (λ edges are stored as traces).
  /// Skipped (counted in rejected_inserts) if the fragment doesn't encode.
  void InsertPositive(const Key& key, const Hypergraph& graph,
                      const Fragment& fragment);

  void Clear();
  Stats GetStats() const;
  size_t num_entries() const;
  const Options& options() const { return options_; }

  /// One key's recorded outcomes in portable form, for snapshotting
  /// (service/persistence.h). Positive fragments keep their stored token
  /// encoding (λ tokens index into the variant's trace list), so an exported
  /// entry re-imports losslessly into any store.
  struct ExportedPositive {
    std::vector<std::vector<int>> traces;
    PortableFragment fragment;
  };
  struct ExportedEntry {
    Fingerprint fingerprint;
    int k = 0;
    /// Failure trace sets (one vector<vector<int>> per recorded variant).
    std::vector<std::vector<std::vector<int>>> negatives;
    std::vector<ExportedPositive> positives;
  };

  /// Snapshots every resident entry, shard by shard, most- to least-recently
  /// used within a shard. One shard lock held at a time. With a non-null
  /// `range`, entries whose fingerprint falls outside it are skipped — a
  /// fingerprint-range-sharded server persists only its slice of the key
  /// space (service/shard_map.h).
  std::vector<ExportedEntry> Export(const FingerprintRange* range = nullptr);

  /// Merges one exported entry back in through the normal dominance /
  /// antichain / eviction machinery, so importing into a non-empty store is
  /// safe. Counts as ordinary inserts in the stats. With a non-null `range`,
  /// an entry outside it is dropped and false is returned — loading a
  /// pre-resharding snapshot keeps only the entries this shard now owns.
  bool Import(const ExportedEntry& entry, const FingerprintRange* range = nullptr);

  /// Drops every variant that a variant of the same fingerprint at a
  /// different k dominates (failures: a ⊇ trace set at higher k; fragments:
  /// a ⊆ trace set at lower k), then removes entries left empty. Same-k
  /// antichains are already maintained at insert, so this is exactly the
  /// cross-k compaction the in-memory store defers: the snapshot writer
  /// (service/persistence.h) and the anti-entropy digests
  /// (service/anti_entropy.h) apply it to Export() output. Order-preserving
  /// (snapshot LRU order survives). Returns the number of dropped variants.
  static size_t CompactExported(std::vector<ExportedEntry>* entries);

 private:
  struct MapKey {
    Fingerprint fingerprint;
    int k = 0;
    bool operator==(const MapKey& other) const {
      return fingerprint == other.fingerprint && k == other.k;
    }
  };
  struct MapKeyHash {
    size_t operator()(const MapKey& key) const {
      return FingerprintHash{}(key.fingerprint) ^
             (static_cast<size_t>(key.k) * 0x9e3779b97f4a7c15ULL);
    }
  };
  struct NegativeVariant {
    std::vector<std::vector<int>> traces;  ///< the failed allowed set
  };
  struct PositiveVariant {
    /// Only the traces the fragment's λ-labels actually use — the smallest
    /// set a future query must be a superset of, maximising dominance.
    std::vector<std::vector<int>> traces;
    PortableFragment fragment;  ///< λ tokens index into `traces`
  };
  struct Entry {
    MapKey key;
    std::vector<NegativeVariant> negatives;  ///< antichain, ⊆-maximal
    /// Antichain, ⊆-minimal. shared_ptr so Lookup can hand a reference out
    /// of the critical section and decode without holding the shard lock.
    std::vector<std::shared_ptr<const PositiveVariant>> positives;
    size_t bytes = 0;
  };
  struct Shard {
    std::mutex mutex;
    std::list<Entry> lru;  // front = most recently used
    std::unordered_map<MapKey, std::list<Entry>::iterator, MapKeyHash> index;
    size_t bytes = 0;
  };

  Shard& ShardFor(const MapKey& key) {
    return *shards_[MapKeyHash{}(key) % shards_.size()];
  }
  /// Finds or creates the entry and moves it to the LRU front. Caller holds
  /// the shard lock.
  std::list<Entry>::iterator Touch(Shard& shard, const MapKey& key);
  /// Dominance-checked insertion of an already-encoded positive variant;
  /// the shared tail of InsertPositive and Import. Takes the shard lock.
  void InsertPositiveVariant(const MapKey& map_key,
                             std::shared_ptr<PositiveVariant> variant);
  /// Ditto for a failure trace set.
  void InsertNegativeVariant(const MapKey& map_key,
                             const std::vector<std::vector<int>>& traces);
  /// Recomputes `entry.bytes` from its variants and applies the delta to the
  /// shard and global byte counters. Caller holds the shard lock.
  void ReaccountBytes(Shard& shard, Entry& entry);
  /// Evicts LRU keys while the shard exceeds its budget slice (the freshly
  /// touched front entry is never evicted). Caller holds the shard lock.
  void EvictOver(Shard& shard);

  Options options_;
  size_t per_shard_budget_;
  std::vector<std::unique_ptr<Shard>> shards_;

  /// Bit k-1 set iff a variant was ever inserted at width k (k in [1, 64];
  /// rarer widths fall back to exact-k lookups only). Purely advisory: it
  /// bounds which cross-k entries Lookup probes, never what is stored.
  std::atomic<uint64_t> k_seen_mask_{0};

  std::atomic<uint64_t> probes_{0};
  std::atomic<uint64_t> negative_hits_{0};
  std::atomic<uint64_t> positive_hits_{0};
  std::atomic<uint64_t> cross_k_negative_hits_{0};
  std::atomic<uint64_t> cross_k_positive_hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> negative_inserts_{0};
  std::atomic<uint64_t> positive_inserts_{0};
  std::atomic<uint64_t> rejected_inserts_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<size_t> entries_{0};
  std::atomic<size_t> bytes_{0};
};

}  // namespace htd::service
