// Async batch scheduler: futures, single-flight dedup, per-job deadlines.
//
// The scheduler accepts decomposition jobs (hypergraph, width k, optional
// timeout), runs each as a task on the fleet-wide work-stealing executor
// (util/executor.h) on the lane the caller names, and returns std::futures.
// Identical requests — same canonical fingerprint, same k, same solver
// config — that arrive while a solve is in flight are coalesced onto that
// flight ("single-flight"): one solver run fans its result out to every
// waiter. Completed results are inserted into the ResultCache (when one is
// attached) so later submissions hit without solving at all.
//
// There is no admission-time thread sizing any more (the old
// PickAutoThreads): each flight lends the solver a util::TaskGroup tied to
// its CancelToken, the solver offers candidate-chunk tasks into it, and
// however many executor workers are free right then run them. A lone solve
// on an idle fleet widens to every core; under a deep queue the same solve
// naturally narrows to its own flight thread — mid-solve, no re-sampling.
//
// Deadlines: the flight's CancelToken is armed with the first submitter's
// deadline BEFORE the task is handed to the executor, so the solver task
// only ever reads a fully published token (TSan-clean by construction).
// A deadline firing cancels the whole task group — every spawned chunk of
// that flight drains at its next candidate check. Waiters that join an
// in-flight solve share the leader's deadline; their `deduplicated` flag
// says so. CancelAll() cooperatively stops every flight.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/solver_factory.h"
#include "service/canonical.h"
#include "service/result_cache.h"
#include "util/cancel.h"
#include "util/executor.h"
#include "util/metrics.h"
#include "util/timer.h"
#include "util/trace.h"

namespace htd::service {

/// One decomposition request.
struct JobSpec {
  const Hypergraph* graph = nullptr;  ///< not owned; copied on admission
  int k = 1;
  /// 0 = no deadline. The deadline is end-to-end from admission: queue wait
  /// counts against it, like a service SLA. Applies when this job starts a
  /// new flight; joining an in-flight duplicate inherits the leader's
  /// deadline instead.
  double timeout_seconds = 0.0;
  /// Trace parentage for spans the scheduler records on this job's behalf
  /// (fingerprint, cache probe, schedule wait, solve). Zero = untraced.
  util::TraceParent trace;
  /// Executor lane this job's flight runs on: sync requests block a client,
  /// async decompose jobs are polled, background is best-effort. Dedup
  /// joiners inherit the leader's lane.
  util::Executor::Lane lane = util::Executor::Lane::kSync;
};

/// Per-stage wall time of one job's trip through the scheduler. Cache hits
/// report zero schedule/solve time (no flight ran); dedup joiners report
/// their own fingerprint/cache time but the leader's schedule/solve.
struct StageBreakdown {
  double fingerprint_seconds = 0.0;
  double cache_seconds = 0.0;     ///< cache probe
  double schedule_seconds = 0.0;  ///< admission → flight start (queue wait)
  double solve_seconds = 0.0;
};

/// What a job's future resolves to.
struct JobResult {
  SolveResult result;
  Fingerprint fingerprint;
  bool cache_hit = false;      ///< answered from the ResultCache, no solve
  bool deduplicated = false;   ///< coalesced onto an already-running flight
  /// Wall time of the flight that produced the result, admission to fan-out.
  /// Cache hits report 0.0 (no flight ran); dedup joiners share the leader's
  /// clock rather than measuring from their own admission.
  double seconds = 0.0;
  /// Peak number of executor workers concurrently inside this flight's task
  /// group — the width the solve *actually reached*, not a pick made at
  /// admission. A lone solve on an idle fleet reports the full worker count;
  /// the same solve under a deep queue reports 1. Cache hits report 0 (no
  /// flight ran).
  int threads_used = 0;
  /// Stage timing for this job (see StageBreakdown).
  StageBreakdown stages;
};

class BatchScheduler {
 public:
  struct Stats {
    uint64_t submitted = 0;     ///< jobs accepted
    uint64_t solves = 0;        ///< actual solver runs started
    uint64_t dedup_joins = 0;   ///< jobs coalesced onto an in-flight solve
    uint64_t cache_hits = 0;    ///< jobs answered from the cache
    uint64_t completed = 0;     ///< futures fulfilled
  };

  /// `cache` may be nullptr (no memoization). `config_digest` must describe
  /// `factory`'s answer-affecting configuration (SolverConfigDigest).
  /// `metrics` may be nullptr (no stage histograms); when set it must
  /// outlive the scheduler.
  BatchScheduler(util::Executor& executor, SolverFactoryFn factory,
                 const SolveOptions& solve_options, ResultCache* cache,
                 uint64_t config_digest,
                 util::MetricsRegistry* metrics = nullptr);
  ~BatchScheduler();

  BatchScheduler(const BatchScheduler&) = delete;
  BatchScheduler& operator=(const BatchScheduler&) = delete;

  /// Admits one job. The graph is fingerprinted and copied on the caller's
  /// thread; the returned future resolves when the job is answered (cache,
  /// dedup fan-out, or fresh solve).
  std::future<JobResult> Submit(const JobSpec& spec);

  /// Admits many jobs, fanning every fresh flight out as an executor task;
  /// futures are index-aligned with `specs`.
  std::vector<std::future<JobResult>> SubmitBatch(const std::vector<JobSpec>& specs);

  /// Cooperatively cancels every in-flight solve (kCancelled results).
  void CancelAll();

  /// Blocks until no flight is running or queued.
  void Drain();

  Stats GetStats() const;

  /// Flights admitted but not yet fanned out — the scheduler's live queue
  /// depth. Cache hits and dedup joins never appear here; this is the number
  /// of solver runs outstanding. Feeds the admission-control surface
  /// (net/decomposition_server.h).
  int queue_depth() const;

  /// Jobs admitted whose futures have not resolved yet (includes every
  /// waiter of a shared flight, unlike queue_depth). The admission bound in
  /// front of the scheduler sheds load against this number.
  uint64_t outstanding_jobs() const;

 private:
  struct Waiter {
    std::promise<JobResult> promise;
    bool deduplicated = false;
    /// This waiter's own admission-time stage costs (joiners keep theirs
    /// even though they share the leader's schedule/solve time).
    double fingerprint_seconds = 0.0;
    double cache_seconds = 0.0;
  };
  struct Flight {
    std::shared_ptr<const Hypergraph> graph;
    CacheKey key;
    util::CancelToken token;
    util::WallTimer timer;
    std::vector<Waiter> waiters;  // guarded by scheduler mutex
    /// Leader's trace parentage, published before the flight task is
    /// submitted (same ordering argument as the CancelToken above).
    util::TraceParent trace;
    /// Lane the leader asked for; the flight task and every chunk its
    /// solve spawns ride on it.
    util::Executor::Lane lane = util::Executor::Lane::kSync;
  };
  struct NewTask {
    std::function<void()> fn;
    util::Executor::Lane lane;
  };

  /// Fingerprints and admits one job: immediate answer (cache hit), join of
  /// an in-flight solve, or a fresh flight whose executor task is appended
  /// to `new_tasks` for the caller to hand to the executor.
  std::future<JobResult> Admit(const JobSpec& spec,
                               std::vector<NewTask>& new_tasks);
  void RunFlight(const std::shared_ptr<Flight>& flight);

  util::Executor& executor_;
  SolverFactoryFn factory_;
  SolveOptions solve_options_;
  ResultCache* cache_;
  uint64_t config_digest_;
  /// Stage latency histograms, null when no registry was attached.
  util::Histogram* stage_fingerprint_ = nullptr;
  util::Histogram* stage_cache_ = nullptr;
  util::Histogram* stage_schedule_ = nullptr;
  util::Histogram* stage_solve_ = nullptr;

  mutable std::mutex mutex_;
  std::condition_variable drained_;
  std::unordered_map<CacheKey, std::shared_ptr<Flight>, CacheKeyHash> inflight_;
  /// Flights admitted but whose fan-out has not finished. Outlives the
  /// flight's inflight_ entry; Drain() waits on this reaching zero.
  int pending_flights_ = 0;  // guarded by mutex_

  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> solves_{0};
  std::atomic<uint64_t> dedup_joins_{0};
  std::atomic<uint64_t> cache_hits_{0};
  std::atomic<uint64_t> completed_{0};
};

}  // namespace htd::service
