// Async batch scheduler: futures, single-flight dedup, per-job deadlines.
//
// The scheduler accepts decomposition jobs (hypergraph, width k, optional
// timeout), runs them on a util::ThreadPool, and returns std::futures.
// Identical requests — same canonical fingerprint, same k, same solver
// config — that arrive while a solve is in flight are coalesced onto that
// flight ("single-flight"): one solver run fans its result out to every
// waiter. Completed results are inserted into the ResultCache (when one is
// attached) so later submissions hit without solving at all.
//
// Deadlines: the flight's CancelToken is armed with the first submitter's
// deadline BEFORE the task is handed to the pool, so the solver thread only
// ever reads a fully published token (TSan-clean by construction). Waiters
// that join an in-flight solve share the leader's deadline; their
// `deduplicated` flag says so. CancelAll() cooperatively stops every flight.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/solver_factory.h"
#include "service/canonical.h"
#include "service/result_cache.h"
#include "util/cancel.h"
#include "util/metrics.h"
#include "util/thread_pool.h"
#include "util/timer.h"
#include "util/trace.h"

namespace htd::service {

/// One decomposition request.
struct JobSpec {
  const Hypergraph* graph = nullptr;  ///< not owned; copied on admission
  int k = 1;
  /// 0 = no deadline. The deadline is end-to-end from admission: queue wait
  /// counts against it, like a service SLA. Applies when this job starts a
  /// new flight; joining an in-flight duplicate inherits the leader's
  /// deadline instead.
  double timeout_seconds = 0.0;
  /// Trace parentage for spans the scheduler records on this job's behalf
  /// (fingerprint, cache probe, schedule wait, solve). Zero = untraced.
  util::TraceParent trace;
};

/// Per-stage wall time of one job's trip through the scheduler. Cache hits
/// report zero schedule/solve time (no flight ran); dedup joiners report
/// their own fingerprint/cache time but the leader's schedule/solve.
struct StageBreakdown {
  double fingerprint_seconds = 0.0;
  double cache_seconds = 0.0;     ///< cache probe
  double schedule_seconds = 0.0;  ///< admission → flight start (queue wait)
  double solve_seconds = 0.0;
};

/// What a job's future resolves to.
struct JobResult {
  SolveResult result;
  Fingerprint fingerprint;
  bool cache_hit = false;      ///< answered from the ResultCache, no solve
  bool deduplicated = false;   ///< coalesced onto an already-running flight
  /// Wall time of the flight that produced the result, admission to fan-out.
  /// Cache hits report 0.0 (no flight ran); dedup joiners share the leader's
  /// clock rather than measuring from their own admission.
  double seconds = 0.0;
  /// Intra-solve threads the flight actually ran with — equal to the
  /// configured SolveOptions::num_threads, or the occupancy-derived pick when
  /// that was 0 (auto). Cache hits report 0 (no flight ran).
  int threads_used = 0;
  /// Stage timing for this job (see StageBreakdown).
  StageBreakdown stages;
};

/// Intra-solve thread count for auto mode (SolveOptions::num_threads == 0):
/// splits the worker pool evenly over the flights currently outstanding, so
/// a lone job fans its separator search across the whole pool while a deep
/// queue runs one thread per job and lets inter-job parallelism saturate it.
/// `queue_depth` counts this flight itself (>= 1 when called from one).
int PickAutoThreads(int pool_threads, int queue_depth);

class BatchScheduler {
 public:
  struct Stats {
    uint64_t submitted = 0;     ///< jobs accepted
    uint64_t solves = 0;        ///< actual solver runs started
    uint64_t dedup_joins = 0;   ///< jobs coalesced onto an in-flight solve
    uint64_t cache_hits = 0;    ///< jobs answered from the cache
    uint64_t completed = 0;     ///< futures fulfilled
  };

  /// `cache` may be nullptr (no memoization). `config_digest` must describe
  /// `factory`'s answer-affecting configuration (SolverConfigDigest).
  /// `metrics` may be nullptr (no stage histograms); when set it must
  /// outlive the scheduler.
  BatchScheduler(util::ThreadPool& pool, SolverFactoryFn factory,
                 const SolveOptions& solve_options, ResultCache* cache,
                 uint64_t config_digest,
                 util::MetricsRegistry* metrics = nullptr);
  ~BatchScheduler();

  BatchScheduler(const BatchScheduler&) = delete;
  BatchScheduler& operator=(const BatchScheduler&) = delete;

  /// Admits one job. The graph is fingerprinted and copied on the caller's
  /// thread; the returned future resolves when the job is answered (cache,
  /// dedup fan-out, or fresh solve).
  std::future<JobResult> Submit(const JobSpec& spec);

  /// Admits many jobs with one pool hand-off (ThreadPool::SubmitBatch);
  /// futures are index-aligned with `specs`.
  std::vector<std::future<JobResult>> SubmitBatch(const std::vector<JobSpec>& specs);

  /// Cooperatively cancels every in-flight solve (kCancelled results).
  void CancelAll();

  /// Blocks until no flight is running or queued.
  void Drain();

  Stats GetStats() const;

  /// Flights admitted but not yet fanned out — the scheduler's live queue
  /// depth. Cache hits and dedup joins never appear here; this is the number
  /// of solver runs outstanding. Feeds the auto thread pick (PickAutoThreads)
  /// and the admission-control surface (net/decomposition_server.h).
  int queue_depth() const;

  /// Jobs admitted whose futures have not resolved yet (includes every
  /// waiter of a shared flight, unlike queue_depth). The admission bound in
  /// front of the scheduler sheds load against this number.
  uint64_t outstanding_jobs() const;

 private:
  struct Waiter {
    std::promise<JobResult> promise;
    bool deduplicated = false;
    /// This waiter's own admission-time stage costs (joiners keep theirs
    /// even though they share the leader's schedule/solve time).
    double fingerprint_seconds = 0.0;
    double cache_seconds = 0.0;
  };
  struct Flight {
    std::shared_ptr<const Hypergraph> graph;
    CacheKey key;
    util::CancelToken token;
    util::WallTimer timer;
    std::vector<Waiter> waiters;  // guarded by scheduler mutex
    /// Leader's trace parentage, published before the pool task is
    /// submitted (same ordering argument as the CancelToken above).
    util::TraceParent trace;
  };

  /// Fingerprints and admits one job: immediate answer (cache hit), join of
  /// an in-flight solve, or a fresh flight whose pool task is appended to
  /// `new_tasks` for the caller to hand to the pool.
  std::future<JobResult> Admit(const JobSpec& spec,
                               std::vector<std::function<void()>>& new_tasks);
  void RunFlight(const std::shared_ptr<Flight>& flight);

  util::ThreadPool& pool_;
  SolverFactoryFn factory_;
  SolveOptions solve_options_;
  ResultCache* cache_;
  uint64_t config_digest_;
  /// Stage latency histograms, null when no registry was attached.
  util::Histogram* stage_fingerprint_ = nullptr;
  util::Histogram* stage_cache_ = nullptr;
  util::Histogram* stage_schedule_ = nullptr;
  util::Histogram* stage_solve_ = nullptr;

  mutable std::mutex mutex_;
  std::condition_variable drained_;
  std::unordered_map<CacheKey, std::shared_ptr<Flight>, CacheKeyHash> inflight_;
  /// Flights admitted but whose fan-out has not finished. Outlives the
  /// flight's inflight_ entry; Drain() waits on this reaching zero.
  int pending_flights_ = 0;  // guarded by mutex_

  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> solves_{0};
  std::atomic<uint64_t> dedup_joins_{0};
  std::atomic<uint64_t> cache_hits_{0};
  std::atomic<uint64_t> completed_{0};
};

}  // namespace htd::service
