#include "service/scheduler.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "util/logging.h"

namespace htd::service {

BatchScheduler::BatchScheduler(util::Executor& executor, SolverFactoryFn factory,
                               const SolveOptions& solve_options,
                               ResultCache* cache, uint64_t config_digest,
                               util::MetricsRegistry* metrics)
    : executor_(executor),
      factory_(std::move(factory)),
      solve_options_(solve_options),
      cache_(cache),
      config_digest_(config_digest) {
  HTD_CHECK(factory_ != nullptr);
  // The flight owns its CancelToken; a caller-level token would outlive our
  // control. Per-job deadlines come in through JobSpec::timeout_seconds.
  solve_options_.cancel = nullptr;
  if (metrics != nullptr) {
    stage_fingerprint_ =
        &metrics->GetHistogram("htd_stage_seconds", "stage=\"fingerprint\"");
    stage_cache_ =
        &metrics->GetHistogram("htd_stage_seconds", "stage=\"cache\"");
    stage_schedule_ =
        &metrics->GetHistogram("htd_stage_seconds", "stage=\"schedule\"");
    stage_solve_ =
        &metrics->GetHistogram("htd_stage_seconds", "stage=\"solve\"");
  }
}

BatchScheduler::~BatchScheduler() {
  CancelAll();
  Drain();
}

std::future<JobResult> BatchScheduler::Submit(const JobSpec& spec) {
  std::vector<NewTask> new_tasks;
  std::future<JobResult> future = Admit(spec, new_tasks);
  for (NewTask& task : new_tasks) {
    executor_.Submit(std::move(task.fn), task.lane);
  }
  return future;
}

std::vector<std::future<JobResult>> BatchScheduler::SubmitBatch(
    const std::vector<JobSpec>& specs) {
  std::vector<std::future<JobResult>> futures;
  futures.reserve(specs.size());
  std::vector<NewTask> new_tasks;
  for (const JobSpec& spec : specs) {
    futures.push_back(Admit(spec, new_tasks));
  }
  for (NewTask& task : new_tasks) {
    executor_.Submit(std::move(task.fn), task.lane);
  }
  return futures;
}

std::future<JobResult> BatchScheduler::Admit(
    const JobSpec& spec, std::vector<NewTask>& new_tasks) {
  HTD_CHECK(spec.graph != nullptr);
  HTD_CHECK_GE(spec.k, 1);
  submitted_.fetch_add(1, std::memory_order_relaxed);

  // Fingerprint on the submitter's thread: keeps the admission lock cheap.
  // Stage timing uses WallTimer, not the trace scope, so the histograms
  // stay populated when tracing is disabled or the job is untraced.
  util::WallTimer fp_timer;
  Fingerprint fp;
  {
    util::TraceScope span("fingerprint", spec.trace);
    fp = CanonicalFingerprint(*spec.graph);
  }
  const double fingerprint_seconds = fp_timer.ElapsedSeconds();
  if (stage_fingerprint_ != nullptr) {
    stage_fingerprint_->Observe(fingerprint_seconds);
  }
  CacheKey key{fp, spec.k, config_digest_};

  std::promise<JobResult> promise;
  std::future<JobResult> future = promise.get_future();

  // Cache probe outside the scheduler lock: the cache has its own shard
  // striping, and a hit copies a whole SolveResult — serialising that behind
  // mutex_ would make every admission pay for it.
  double cache_seconds = 0.0;
  if (cache_ != nullptr) {
    util::WallTimer cache_timer;
    std::optional<SolveResult> hit;
    {
      util::TraceScope span("cache", spec.trace);
      hit = cache_->Lookup(key);
    }
    cache_seconds = cache_timer.ElapsedSeconds();
    if (stage_cache_ != nullptr) stage_cache_->Observe(cache_seconds);
    if (hit) {
      cache_hits_.fetch_add(1, std::memory_order_relaxed);
      completed_.fetch_add(1, std::memory_order_relaxed);
      JobResult job_result;
      job_result.result = std::move(*hit);
      job_result.fingerprint = fp;
      job_result.cache_hit = true;
      job_result.stages.fingerprint_seconds = fingerprint_seconds;
      job_result.stages.cache_seconds = cache_seconds;
      promise.set_value(std::move(job_result));
      return future;
    }
  }

  // Prepare the flight before taking the lock too — the graph copy is
  // O(n + m). It is wasted work only when this job loses the admission race
  // to an identical in-flight solve (the rare case by construction).
  auto flight = std::make_shared<Flight>();
  flight->graph = std::make_shared<const Hypergraph>(*spec.graph);
  flight->key = key;
  flight->trace = spec.trace;
  flight->lane = spec.lane;
  if (spec.timeout_seconds > 0.0) {
    // Armed before the task reaches the executor: the worker's read of the
    // deadline is ordered after this write by the executor's queue mutex.
    flight->token.SetTimeout(std::chrono::duration<double>(spec.timeout_seconds));
  }

  {
    std::lock_guard<std::mutex> lock(mutex_);
    // Single-flight: join an identical in-flight solve if there is one. A
    // solve that completed between the cache probe above and this point
    // re-solves instead of hitting — correct, just not free; the window is
    // a few instructions wide.
    auto it = inflight_.find(key);
    if (it != inflight_.end()) {
      dedup_joins_.fetch_add(1, std::memory_order_relaxed);
      it->second->waiters.push_back(Waiter{std::move(promise), true,
                                           fingerprint_seconds,
                                           cache_seconds});
      return future;
    }
    flight->waiters.push_back(
        Waiter{std::move(promise), false, fingerprint_seconds, cache_seconds});
    inflight_.emplace(key, flight);
    ++pending_flights_;
  }
  solves_.fetch_add(1, std::memory_order_relaxed);
  new_tasks.push_back(NewTask{[this, flight] { RunFlight(flight); }, flight->lane});
  return future;
}

void BatchScheduler::RunFlight(const std::shared_ptr<Flight>& flight) {
  // Queue wait: admission (flight->timer start) to here. Recorded as a
  // retroactive span because no scope was open across the pool hand-off.
  const double schedule_seconds = flight->timer.ElapsedSeconds();
  if (stage_schedule_ != nullptr) stage_schedule_->Observe(schedule_seconds);
  if (flight->trace.root != 0) {
    util::TraceRegistry& trace_registry = util::TraceRegistry::Instance();
    uint64_t now_ns = trace_registry.NowNs();
    uint64_t wait_ns = static_cast<uint64_t>(schedule_seconds * 1e9);
    util::RecordSpan("schedule", flight->trace.parent, flight->trace.root,
                     now_ns >= wait_ns ? now_ns - wait_ns : 0, wait_ns);
  }
  SolveOptions options = solve_options_;
  options.cancel = &flight->token;
  // The flight lends the solver a task group tied to its token and lane.
  // Auto width (num_threads == 0) offers chunks for the whole fleet — how
  // many actually run concurrently is decided by which workers are free at
  // each search level, so width adapts mid-solve with no sampling here.
  util::TaskGroup group(executor_, &flight->token, flight->lane);
  options.task_group = &group;
  if (options.num_threads == 0) options.num_threads = executor_.num_workers();
  SolveResult result;
  util::WallTimer solve_timer;
  // A throwing solve must not leak the flight: waiters would see
  // broken_promise and Drain() would block forever on the stale inflight_
  // entry. Escaped exceptions become kError results instead.
  try {
    util::TraceScope span("solve", flight->trace,
                          static_cast<uint64_t>(options.num_threads));
    if (span.armed()) {
      options.trace_parent = span.id();
      options.trace_root = span.root();
    }
    std::unique_ptr<HdSolver> solver = factory_(options);
    result = solver->Solve(*flight->graph, flight->key.k);
  } catch (...) {
    result = SolveResult{};
    result.outcome = Outcome::kError;
  }
  // The solver drains its nested groups before returning; this only mops up
  // if it error-exited with stragglers still queued.
  try {
    group.Wait();
  } catch (...) {
    if (result.outcome == Outcome::kYes || result.outcome == Outcome::kNo) {
      result = SolveResult{};
      result.outcome = Outcome::kError;
    }
  }
  const double solve_seconds = solve_timer.ElapsedSeconds();
  if (stage_solve_ != nullptr) stage_solve_->Observe(solve_seconds);

  // Only definitive answers are worth memoizing; kCancelled/kError depend on
  // the deadline (or fault) that produced them, not on the instance.
  if (cache_ != nullptr &&
      (result.outcome == Outcome::kYes || result.outcome == Outcome::kNo)) {
    cache_->Insert(flight->key, result);
  }

  std::vector<Waiter> waiters;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    waiters = std::move(flight->waiters);
    inflight_.erase(flight->key);
  }

  const double seconds = flight->timer.ElapsedSeconds();
  for (Waiter& waiter : waiters) {
    JobResult job_result;
    job_result.result = result;
    job_result.fingerprint = flight->key.fingerprint;
    job_result.deduplicated = waiter.deduplicated;
    job_result.seconds = seconds;
    job_result.threads_used = std::max(1, group.peak_width());
    job_result.stages.fingerprint_seconds = waiter.fingerprint_seconds;
    job_result.stages.cache_seconds = waiter.cache_seconds;
    job_result.stages.schedule_seconds = schedule_seconds;
    job_result.stages.solve_seconds = solve_seconds;
    completed_.fetch_add(1, std::memory_order_relaxed);
    waiter.promise.set_value(std::move(job_result));
  }

  // The drain signal comes last: Drain() returning is the caller's licence
  // to destroy the scheduler, so nothing may touch `this` after the count
  // hits zero. The notify stays under the lock for the same reason.
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (--pending_flights_ == 0) drained_.notify_all();
  }
}

void BatchScheduler::CancelAll() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [key, flight] : inflight_) {
    flight->token.RequestStop();
  }
}

void BatchScheduler::Drain() {
  // pending_flights_, not inflight_.empty(): a flight leaves inflight_
  // before its waiters are fulfilled, and Drain() must not return while the
  // worker is still in that fan-out (see the tail of RunFlight).
  std::unique_lock<std::mutex> lock(mutex_);
  drained_.wait(lock, [this] { return pending_flights_ == 0; });
}

int BatchScheduler::queue_depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return pending_flights_;
}

uint64_t BatchScheduler::outstanding_jobs() const {
  // completed_ is incremented just before each promise is fulfilled, so this
  // can transiently UNDER-count by the jobs mid-fan-out (their waiters are
  // already counted completed). Callers use it as an approximate
  // load-shedding threshold, not an exact semaphore.
  uint64_t submitted = submitted_.load(std::memory_order_relaxed);
  uint64_t completed = completed_.load(std::memory_order_relaxed);
  return submitted >= completed ? submitted - completed : 0;
}

BatchScheduler::Stats BatchScheduler::GetStats() const {
  Stats stats;
  stats.submitted = submitted_.load(std::memory_order_relaxed);
  stats.solves = solves_.load(std::memory_order_relaxed);
  stats.dedup_joins = dedup_joins_.load(std::memory_order_relaxed);
  stats.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  stats.completed = completed_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace htd::service
