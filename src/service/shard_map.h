// Fingerprint-range shard map: the shared topology config of a sharded
// warm-state deployment.
//
// The paper's parallel LogKDecomp wins come from splitting the work that
// det-k-decomp's "extensive caching" serialises (PODS 2022 §1); PR 2/3
// rebuilt that caching as long-lived warm state (result cache + subproblem
// store, snapshot-persistent). One process can only hold so much of it, so
// the warm state is scaled out by partitioning the canonical 128-bit
// fingerprint space — the key of the result cache AND of the subproblem
// store — into N contiguous ranges, one hdserver process per range. The
// fingerprint is isomorphism-invariant, so every renaming of an instance
// (and every isomorphic subproblem) lands on the same shard: the same
// cache-partitioning discipline det-k applies in-process, lifted to a fleet.
//
// A ShardMap is parsed from the operator's endpoint list
// ("host:port,host:port,..."); shard i owns the i-th of N equal slices of
// the fingerprint's high word. A range can additionally be REPLICATED for
// hot-range availability: "host:port*R" declares that this endpoint and the
// R-1 endpoints following it in the list serve the SAME range — e.g.
// "a:1,b:1*2,c:1" is a two-range map where range 1 is served by both b:1
// and c:1. Replicas of a range all run with the same --shard-index; the
// router (net/shard_router.h) round-robins reads over them and pushes
// migration imports to all of them, so losing one replica is a warm-state
// non-event instead of a cold start. Every participant — the hdserver proxy
// mode, sharded hdserver backends, and hdclient doing client-side hashing —
// must hold the SAME map: Digest() condenses the full topology (replica
// groups included) into 64 bits that are attached to forwarded requests
// (x-htd-shard-digest) and checked by the backends, so a client or proxy
// operating on a stale map is refused with 421 instead of silently
// poisoning another shard's range.
//
// Routing is pure arithmetic (no lookup tables): IndexFor is a division,
// RangeFor an interval — deterministic across processes, architectures,
// and restarts, which is what makes per-shard snapshots self-describing
// (each shard persists only its range; see service/persistence.h).
#pragma once

#include <string>
#include <vector>

#include "service/canonical.h"
#include "util/status.h"

namespace htd::service {

struct ShardEndpoint {
  std::string host;
  int port = 0;

  bool operator==(const ShardEndpoint& other) const {
    return host == other.host && port == other.port;
  }
};

class ShardMap {
 public:
  /// Parses "host:port,host:port,..." (1 to 4096 endpoints; spaces around
  /// commas tolerated). A "host:port*R" item (2 <= R <= 8) groups that
  /// endpoint and the R-1 plain items following it into one replicated
  /// range. InvalidArgument on empty specs, malformed endpoints,
  /// out-of-range ports, a replica count the list cannot satisfy, or a
  /// duplicate endpoint (one process cannot serve two ranges).
  static util::StatusOr<ShardMap> Parse(const std::string& spec);

  /// Canonical textual form ("host:port,host:port*2,host:port");
  /// Parse(Serialise()) round-trips, and equal maps serialise equally
  /// (an explicit "*1" parses but is never emitted).
  std::string Serialise() const;

  /// 64-bit digest of the full topology (range count, every endpoint, and
  /// the replica grouping). Two processes agree on routing iff their
  /// digests match.
  uint64_t Digest() const;
  /// Digest() in 16 hex digits, the wire form of x-htd-shard-digest.
  std::string DigestHex() const;

  /// Number of fingerprint RANGES (not processes; a replicated range counts
  /// once). --shard-index addresses ranges.
  int num_shards() const { return static_cast<int>(replicas_.size()); }
  /// Replica count of range `index` (>= 1; 1 for an unreplicated range).
  int num_replicas(int index) const {
    return static_cast<int>(replicas_[index].size());
  }
  /// The PRIMARY (first-listed) replica of range `index` — the whole
  /// endpoint set is replica(index, 0..num_replicas-1).
  const ShardEndpoint& endpoint(int index) const {
    return replicas_[index][0];
  }
  /// Replica `r` of range `index` (0 <= r < num_replicas(index)).
  const ShardEndpoint& replica(int index, int r) const {
    return replicas_[index][r];
  }
  /// Total process count across every range's replica set.
  int num_endpoints() const;

  /// Locates `endpoint` anywhere in the map (any replica slot). Returns the
  /// range index it serves, or -1 when the endpoint is not in the map —
  /// how tools/hdreshard.cc maps an old process to its --shard-index under
  /// a new topology.
  int RangeOfEndpoint(const ShardEndpoint& endpoint) const;

  /// The replica siblings of range `index`: every replica except `self`, in
  /// map order — who the anti-entropy sweep (net/decomposition_server.h)
  /// reconciles with. Empty for an unreplicated range. A `self` that is not
  /// in the group returns the whole replica set: a process that cannot
  /// identify itself pulls from everyone, and a pull from itself is a
  /// digest-equal no-op.
  std::vector<ShardEndpoint> Siblings(int index, const ShardEndpoint& self) const;

  /// The shard owning `fp`: floor(fp.hi / step), clamped to the last shard.
  /// Deterministic — equal maps route equal fingerprints identically.
  int IndexFor(const Fingerprint& fp) const;

  /// The inclusive hi-word range shard `index` owns. Ranges partition the
  /// space: every fingerprint is in exactly one shard's range, and
  /// RangeFor(IndexFor(fp)).Contains(fp) always holds.
  FingerprintRange RangeFor(int index) const;

 private:
  explicit ShardMap(std::vector<std::vector<ShardEndpoint>> replicas);

  /// Width of each shard's hi-slice (2^64 / num_shards, rounded up so
  /// num_shards * step covers the space; the last shard absorbs the
  /// remainder). 0 means the single-shard full range.
  uint64_t step_ = 0;
  /// replicas_[range] = that range's replica set, primary first.
  std::vector<std::vector<ShardEndpoint>> replicas_;
};

}  // namespace htd::service
