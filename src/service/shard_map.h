// Fingerprint-range shard map: the shared topology config of a sharded
// warm-state deployment.
//
// The paper's parallel LogKDecomp wins come from splitting the work that
// det-k-decomp's "extensive caching" serialises (PODS 2022 §1); PR 2/3
// rebuilt that caching as long-lived warm state (result cache + subproblem
// store, snapshot-persistent). One process can only hold so much of it, so
// the warm state is scaled out by partitioning the canonical 128-bit
// fingerprint space — the key of the result cache AND of the subproblem
// store — into N contiguous ranges, one hdserver process per range. The
// fingerprint is isomorphism-invariant, so every renaming of an instance
// (and every isomorphic subproblem) lands on the same shard: the same
// cache-partitioning discipline det-k applies in-process, lifted to a fleet.
//
// A ShardMap is parsed from the operator's endpoint list
// ("host:port,host:port,..."); shard i owns the i-th of N equal slices of
// the fingerprint's high word. Every participant — the hdserver proxy mode
// (net/shard_router.h), sharded hdserver backends, and hdclient doing
// client-side hashing — must hold the SAME map: Digest() condenses the
// full topology into 64 bits that are attached to forwarded requests
// (x-htd-shard-digest) and checked by the backends, so a client or proxy
// operating on a stale map is refused with 421 instead of silently
// poisoning another shard's range.
//
// Routing is pure arithmetic (no lookup tables): IndexFor is a division,
// RangeFor an interval — deterministic across processes, architectures,
// and restarts, which is what makes per-shard snapshots self-describing
// (each shard persists only its range; see service/persistence.h).
#pragma once

#include <string>
#include <vector>

#include "service/canonical.h"
#include "util/status.h"

namespace htd::service {

struct ShardEndpoint {
  std::string host;
  int port = 0;

  bool operator==(const ShardEndpoint& other) const {
    return host == other.host && port == other.port;
  }
};

class ShardMap {
 public:
  /// Parses "host:port,host:port,..." (1 to 4096 endpoints; spaces around
  /// commas tolerated). InvalidArgument on empty specs, malformed endpoints,
  /// or out-of-range ports.
  static util::StatusOr<ShardMap> Parse(const std::string& spec);

  /// Canonical textual form ("host:port,host:port"); Parse(Serialise())
  /// round-trips, and equal maps serialise equally.
  std::string Serialise() const;

  /// 64-bit digest of the full topology (shard count + every endpoint).
  /// Two processes agree on routing iff their digests match.
  uint64_t Digest() const;
  /// Digest() in 16 hex digits, the wire form of x-htd-shard-digest.
  std::string DigestHex() const;

  int num_shards() const { return static_cast<int>(endpoints_.size()); }
  const ShardEndpoint& endpoint(int index) const { return endpoints_[index]; }

  /// The shard owning `fp`: floor(fp.hi / step), clamped to the last shard.
  /// Deterministic — equal maps route equal fingerprints identically.
  int IndexFor(const Fingerprint& fp) const;

  /// The inclusive hi-word range shard `index` owns. Ranges partition the
  /// space: every fingerprint is in exactly one shard's range, and
  /// RangeFor(IndexFor(fp)).Contains(fp) always holds.
  FingerprintRange RangeFor(int index) const;

 private:
  explicit ShardMap(std::vector<ShardEndpoint> endpoints);

  /// Width of each shard's hi-slice (2^64 / num_shards, rounded up so
  /// num_shards * step covers the space; the last shard absorbs the
  /// remainder). 0 means the single-shard full range.
  uint64_t step_ = 0;
  std::vector<ShardEndpoint> endpoints_;
};

}  // namespace htd::service
