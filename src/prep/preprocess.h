// Width-preserving hypergraph preprocessing.
//
// Production HD systems (NewDetKDecomp, BalancedGo, HtdLEO's pipeline) never
// decompose the raw input: they first apply the standard simplifications of
// the HyperBench paper [9, §"simplification"], all of which provably preserve
// hw (and ghw):
//
//  * subsumed-edge removal  — an edge e with e ⊆ f (f ≠ e) is dropped: any HD
//    of the reduced graph covers e at the node covering f, and conversely an
//    HD of the full graph restricted to the surviving edges keeps its width;
//  * twin-vertex contraction — vertices with identical edge incidence are
//    merged into one representative: bags and edges translate 1:1 in both
//    directions (add/remove the whole class together), every HD condition is
//    symmetric in class members;
//  * connected-component split — hw(H) = max over the components; component
//    HDs reattach as children of the first component's root (their vertex
//    sets are disjoint, so connectedness and the special condition cannot
//    interact across components).
//
// The first two enable each other (contracting twins can make edges equal,
// removing edges can create new twins), so they run to a joint fixpoint.
// Preprocess() records everything needed to lift a decomposition of the
// reduced instance back to the original hypergraph; the tests validate every
// lifted HD with the full condition-by-condition validator and assert that
// optimal widths are unchanged on all generator families.
#pragma once

#include <vector>

#include "decomp/decomposition.h"
#include "hypergraph/hypergraph.h"

namespace htd {

struct PreprocessOptions {
  bool remove_subsumed_edges = true;
  bool contract_twin_vertices = true;
  bool split_components = true;
};

struct PreprocessStats {
  int subsumed_edges_removed = 0;
  int twin_vertices_contracted = 0;
  int num_components = 0;
  int fixpoint_rounds = 0;
};

/// One connected component of the reduced hypergraph, with id mappings back
/// into the original graph.
struct ReducedComponent {
  Hypergraph graph;
  /// Component vertex id -> original vertex id of the class representative.
  std::vector<int> vertex_to_orig;
  /// Component edge id -> original edge id (a surviving, non-subsumed edge).
  std::vector<int> edge_to_orig;
};

class PreprocessedInstance {
 public:
  const std::vector<ReducedComponent>& components() const { return components_; }
  const PreprocessStats& stats() const { return stats_; }

  /// All members of the twin class of original vertex `rep` (including rep
  /// itself). Singleton for non-contracted vertices.
  const std::vector<int>& TwinClass(int rep) const;

  /// Total |E| over all reduced components (== surviving original edges).
  int ReducedEdgeCount() const;

  /// Lifts HDs of the reduced components back to a decomposition of the
  /// original hypergraph; `component_decomps[i]` must be a decomposition of
  /// `components()[i].graph`. Width is the max over the inputs; HD validity
  /// is preserved (see file comment). Checked against the HD validator in
  /// tests on every family.
  Decomposition Lift(const Hypergraph& original,
                     const std::vector<Decomposition>& component_decomps) const;

 private:
  friend PreprocessedInstance Preprocess(const Hypergraph&, const PreprocessOptions&);

  std::vector<ReducedComponent> components_;
  PreprocessStats stats_;
  /// Indexed by original vertex id; non-empty exactly for class
  /// representatives (singleton classes included).
  std::vector<std::vector<int>> twin_classes_;
};

/// Runs the reductions to fixpoint and splits into connected components.
PreprocessedInstance Preprocess(const Hypergraph& graph,
                                const PreprocessOptions& options = {});

}  // namespace htd
