#include "prep/preprocess.h"

#include <algorithm>
#include <map>
#include <numeric>
#include <queue>
#include <vector>

#include "util/logging.h"

namespace htd {
namespace {

/// Plain union-find over 0..n-1 with path halving; smallest id wins as root
/// so class representatives are stable and deterministic.
class UnionFind {
 public:
  explicit UnionFind(int n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }

  int Find(int x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  void Union(int a, int b) {
    a = Find(a);
    b = Find(b);
    if (a == b) return;
    if (a > b) std::swap(a, b);
    parent_[b] = a;  // smaller id becomes the representative
  }

 private:
  std::vector<int> parent_;
};

}  // namespace

const std::vector<int>& PreprocessedInstance::TwinClass(int rep) const {
  HTD_CHECK(rep >= 0 && rep < static_cast<int>(twin_classes_.size()));
  HTD_CHECK(!twin_classes_[rep].empty())
      << "vertex " << rep << " is not a class representative";
  return twin_classes_[rep];
}

int PreprocessedInstance::ReducedEdgeCount() const {
  int total = 0;
  for (const auto& c : components_) total += c.graph.num_edges();
  return total;
}

PreprocessedInstance Preprocess(const Hypergraph& graph,
                                const PreprocessOptions& options) {
  const int n = graph.num_vertices();
  const int m = graph.num_edges();

  // Working state: surviving edges with their current (contracted) vertex
  // sets, and a union-find of twin classes over the original vertices.
  std::vector<bool> edge_alive(m, true);
  std::vector<util::DynamicBitset> edge_set(m);
  for (int e = 0; e < m; ++e) edge_set[e] = graph.edge_vertices(e);
  UnionFind classes(n);

  PreprocessedInstance out;
  out.stats_.num_components = 0;

  bool changed = true;
  while (changed) {
    changed = false;
    ++out.stats_.fixpoint_rounds;

    if (options.contract_twin_vertices) {
      // Group current representatives by their incidence signature over the
      // surviving edges. std::map keeps the grouping deterministic.
      std::map<std::vector<int>, std::vector<int>> by_signature;
      std::vector<std::vector<int>> incidence(n);
      for (int e = 0; e < m; ++e) {
        if (!edge_alive[e]) continue;
        edge_set[e].ForEach([&](int v) { incidence[v].push_back(e); });
      }
      for (int v = 0; v < n; ++v) {
        if (!incidence[v].empty()) by_signature[incidence[v]].push_back(v);
      }
      for (const auto& [signature, members] : by_signature) {
        if (members.size() < 2) continue;
        changed = true;
        const int rep = members.front();  // members ascend, so rep is minimal
        for (size_t i = 1; i < members.size(); ++i) {
          classes.Union(rep, members[i]);
          ++out.stats_.twin_vertices_contracted;
          for (int e : signature) edge_set[e].Reset(members[i]);
        }
      }
    }

    if (options.remove_subsumed_edges) {
      // e is dropped if e ⊆ f for a distinct surviving f; on equality the
      // smaller id survives. Quadratic in |E| with bitset subset tests —
      // negligible next to the decomposition search.
      for (int e = 0; e < m; ++e) {
        if (!edge_alive[e]) continue;
        for (int f = 0; f < m && edge_alive[e]; ++f) {
          if (f == e || !edge_alive[f]) continue;
          if (!edge_set[e].IsSubsetOf(edge_set[f])) continue;
          if (edge_set[e] == edge_set[f] && e < f) continue;
          edge_alive[e] = false;
          ++out.stats_.subsumed_edges_removed;
          changed = true;
        }
      }
    }

    if (!options.contract_twin_vertices && !options.remove_subsumed_edges) break;
  }

  // Materialise the twin classes (indexed by representative).
  out.twin_classes_.assign(n, {});
  for (int v = 0; v < n; ++v) out.twin_classes_[classes.Find(v)].push_back(v);

  // Split the surviving edges into connected components (vertices shared ⇒
  // same component); without the option everything is one component.
  UnionFind comp(n);
  for (int e = 0; e < m; ++e) {
    if (!edge_alive[e]) continue;
    const int first = edge_set[e].FindFirst();
    edge_set[e].ForEach([&](int v) { comp.Union(first, v); });
  }

  std::map<int, std::vector<int>> edges_by_component;  // deterministic order
  for (int e = 0; e < m; ++e) {
    if (!edge_alive[e]) continue;
    const int key =
        options.split_components ? comp.Find(edge_set[e].FindFirst()) : 0;
    edges_by_component[key].push_back(e);
  }

  for (const auto& [key, edges] : edges_by_component) {
    ReducedComponent component;
    std::vector<int> orig_to_local(n, -1);
    for (int e : edges) {
      std::vector<int> local_vertices;
      edge_set[e].ForEach([&](int v) {
        if (orig_to_local[v] == -1) {
          orig_to_local[v] =
              component.graph.GetOrAddVertex(graph.vertex_name(v));
          component.vertex_to_orig.push_back(v);
        }
        local_vertices.push_back(orig_to_local[v]);
      });
      auto added = component.graph.AddEdge(graph.edge_name(e), local_vertices);
      HTD_CHECK(added.ok()) << added.status().ToString();
      component.edge_to_orig.push_back(e);
    }
    out.components_.push_back(std::move(component));
  }
  out.stats_.num_components = static_cast<int>(out.components_.size());
  return out;
}

Decomposition PreprocessedInstance::Lift(
    const Hypergraph& original,
    const std::vector<Decomposition>& component_decomps) const {
  HTD_CHECK_EQ(component_decomps.size(), components_.size())
      << "one decomposition per reduced component required";

  Decomposition lifted;
  const int n = original.num_vertices();

  if (components_.empty()) {
    // Edgeless hypergraph: a single empty node is a width-0 HD.
    lifted.AddNode({}, util::DynamicBitset(n), -1);
    return lifted;
  }

  int overall_root = -1;
  for (size_t i = 0; i < components_.size(); ++i) {
    const ReducedComponent& component = components_[i];
    const Decomposition& decomp = component_decomps[i];
    HTD_CHECK_GE(decomp.root(), 0) << "component decomposition has no root";

    // BFS so parents are always added before their children.
    std::vector<int> new_id(decomp.num_nodes(), -1);
    std::queue<int> queue;
    queue.push(decomp.root());
    while (!queue.empty()) {
      const int u = queue.front();
      queue.pop();
      const DecompNode& node = decomp.node(u);

      std::vector<int> lambda;
      lambda.reserve(node.lambda.size());
      for (int e : node.lambda) lambda.push_back(component.edge_to_orig[e]);
      std::sort(lambda.begin(), lambda.end());

      util::DynamicBitset chi(n);
      node.chi.ForEach([&](int local_v) {
        // Re-expand the whole twin class of the representative.
        for (int member : TwinClass(component.vertex_to_orig[local_v])) {
          chi.Set(member);
        }
      });

      int parent;
      if (node.parent >= 0) {
        parent = new_id[node.parent];
      } else {
        // Component roots: the first becomes the overall root, the others
        // attach below it (disjoint vertex sets keep all HD conditions
        // independent across components).
        parent = (i == 0) ? -1 : overall_root;
      }
      new_id[u] = lifted.AddNode(std::move(lambda), std::move(chi), parent);
      if (i == 0 && node.parent < 0) overall_root = new_id[u];

      for (int child : node.children) queue.push(child);
    }
  }
  return lifted;
}

}  // namespace htd
