// PreprocessingSolver: wraps any HdSolver with the width-preserving
// reductions of prep/preprocess.h.
//
// Solve(H, k) preprocesses H, runs the inner solver on every reduced
// component, and lifts the component HDs back to an HD of H. Because the
// reductions preserve hw exactly (see preprocess.h), the wrapper is both
// sound and complete: it answers kYes/kNo exactly when the inner solver
// would on the raw input — typically much faster, since subsumed edges and
// twin vertices inflate the separator search space without changing the
// decomposition structure.
#pragma once

#include <memory>
#include <string>

#include "core/solver.h"
#include "prep/preprocess.h"

namespace htd {

/// Owning convenience factory: wraps `inner` (taking ownership) in a
/// PreprocessingSolver. Handy for solver-factory call sites.
std::unique_ptr<HdSolver> MakePreprocessingSolver(std::unique_ptr<HdSolver> inner,
                                                  PreprocessOptions options = {},
                                                  bool validate_result = false);

class PreprocessingSolver : public HdSolver {
 public:
  /// `inner` must outlive this wrapper.
  explicit PreprocessingSolver(HdSolver& inner, PreprocessOptions options = {},
                               bool validate_result = false)
      : inner_(inner), options_(options), validate_result_(validate_result) {}

  SolveResult Solve(const Hypergraph& graph, int k) override;
  std::string name() const override { return inner_.name() + " + prep"; }

  /// Stats of the most recent Solve()'s reduction pass.
  const PreprocessStats& last_prep_stats() const { return last_prep_stats_; }

 private:
  HdSolver& inner_;
  PreprocessOptions options_;
  bool validate_result_;
  PreprocessStats last_prep_stats_;
};

}  // namespace htd
