#include "prep/prep_solver.h"

#include <utility>
#include <vector>

#include "decomp/validation.h"
#include "util/timer.h"

namespace htd {
namespace {

void AccumulateStats(const SolveStats& in, SolveStats& out) {
  out.separators_tried += in.separators_tried;
  out.recursive_calls += in.recursive_calls;
  out.max_recursion_depth = std::max(out.max_recursion_depth, in.max_recursion_depth);
  out.cache_hits += in.cache_hits;
  out.detk_subproblems += in.detk_subproblems;
  out.work_total += in.work_total;
  out.work_parallel += in.work_parallel;
}

}  // namespace

namespace {

class OwningPreprocessingSolver : public HdSolver {
 public:
  OwningPreprocessingSolver(std::unique_ptr<HdSolver> inner,
                            PreprocessOptions options, bool validate_result)
      : inner_(std::move(inner)),
        wrapper_(*inner_, options, validate_result) {}

  SolveResult Solve(const Hypergraph& graph, int k) override {
    return wrapper_.Solve(graph, k);
  }
  std::string name() const override { return wrapper_.name(); }

 private:
  std::unique_ptr<HdSolver> inner_;
  PreprocessingSolver wrapper_;
};

}  // namespace

std::unique_ptr<HdSolver> MakePreprocessingSolver(std::unique_ptr<HdSolver> inner,
                                                  PreprocessOptions options,
                                                  bool validate_result) {
  return std::make_unique<OwningPreprocessingSolver>(std::move(inner), options,
                                                     validate_result);
}

SolveResult PreprocessingSolver::Solve(const Hypergraph& graph, int k) {
  util::WallTimer timer;
  PreprocessedInstance instance = Preprocess(graph, options_);
  last_prep_stats_ = instance.stats();

  SolveResult result;
  result.outcome = Outcome::kYes;

  // hw(H) = max over components (and is unchanged by the reductions), so the
  // decision for H is the conjunction of the per-component decisions.
  std::vector<Decomposition> component_decomps;
  bool all_constructed = true;
  for (const ReducedComponent& component : instance.components()) {
    SolveResult sub = inner_.Solve(component.graph, k);
    AccumulateStats(sub.stats, result.stats);
    if (sub.outcome != Outcome::kYes) {
      result.outcome = sub.outcome;
      result.stats.seconds = timer.ElapsedSeconds();
      return result;
    }
    if (sub.decomposition.has_value()) {
      component_decomps.push_back(*std::move(sub.decomposition));
    } else {
      all_constructed = false;  // decision-only inner solver
    }
  }

  if (all_constructed) {
    result.decomposition = instance.Lift(graph, component_decomps);
    if (validate_result_) {
      Validation validation = ValidateHdWithWidth(graph, *result.decomposition, k);
      if (!validation) {
        result.outcome = Outcome::kError;
        result.decomposition.reset();
      }
    }
  }
  result.stats.seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace htd
