#include "cq/query.h"

#include <cctype>

namespace htd::cq {
namespace {

class Scanner {
 public:
  explicit Scanner(const std::string& text) : text_(text) {}

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  bool AtEnd() {
    SkipSpace();
    return pos_ >= text_.size();
  }
  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  std::string ReadIdent() {
    SkipSpace();
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_')) {
      ++pos_;
    }
    return text_.substr(start, pos_ - start);
  }

 private:
  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

util::StatusOr<Query> ParseQuery(const std::string& text) {
  Scanner scan(text);
  Query query;
  while (!scan.AtEnd()) {
    Atom atom;
    atom.relation = scan.ReadIdent();
    if (atom.relation.empty()) {
      return util::Status::InvalidArgument("expected relation symbol");
    }
    if (!scan.Consume('(')) {
      return util::Status::InvalidArgument("expected '(' after relation '" +
                                           atom.relation + "'");
    }
    for (;;) {
      std::string variable = scan.ReadIdent();
      if (variable.empty()) {
        return util::Status::InvalidArgument("expected variable in atom '" +
                                             atom.relation + "'");
      }
      atom.variables.push_back(variable);
      if (scan.Consume(',')) continue;
      break;
    }
    if (!scan.Consume(')')) {
      return util::Status::InvalidArgument("expected ')' closing atom '" +
                                           atom.relation + "'");
    }
    query.atoms.push_back(std::move(atom));
    if (scan.Consume(',')) continue;
    if (scan.Consume('.')) break;
  }
  if (query.atoms.empty()) {
    return util::Status::InvalidArgument("query has no atoms");
  }
  return query;
}

Hypergraph QueryHypergraph(const Query& query) {
  Hypergraph graph;
  for (size_t i = 0; i < query.atoms.size(); ++i) {
    std::vector<int> vertices;
    for (const std::string& variable : query.atoms[i].variables) {
      vertices.push_back(graph.GetOrAddVertex(variable));
    }
    auto added =
        graph.AddEdge("a" + std::to_string(i) + "_" + query.atoms[i].relation,
                      vertices);
    HTD_CHECK(added.ok()) << added.status().message();
  }
  return graph;
}

}  // namespace htd::cq
