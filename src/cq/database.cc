#include "cq/database.h"

#include <unordered_map>

namespace htd::cq {

void Database::AddRelation(Relation relation) {
  relations_[relation.name] = std::move(relation);
}

const Relation* Database::Find(const std::string& name) const {
  auto it = relations_.find(name);
  return it == relations_.end() ? nullptr : &it->second;
}

Database RandomDatabase(util::Rng& rng, const Query& query, int domain_size,
                        int tuples_per_relation, double satisfiable_bias) {
  Database db;
  // A global assignment that, when planted, satisfies the whole query.
  std::unordered_map<std::string, int64_t> spine;
  auto spine_value = [&](const std::string& variable) {
    auto it = spine.find(variable);
    if (it != spine.end()) return it->second;
    int64_t value = rng.UniformInt(0, domain_size - 1);
    spine.emplace(variable, value);
    return value;
  };

  bool plant = rng.Chance(satisfiable_bias);
  std::unordered_map<std::string, Relation> relations;
  for (const Atom& atom : query.atoms) {
    auto [it, inserted] = relations.try_emplace(atom.relation);
    Relation& rel = it->second;
    if (inserted) {
      rel.name = atom.relation;
      rel.arity = static_cast<int>(atom.variables.size());
      for (int t = 0; t < tuples_per_relation; ++t) {
        Tuple tuple(rel.arity);
        for (auto& cell : tuple) cell = rng.UniformInt(0, domain_size - 1);
        rel.tuples.push_back(std::move(tuple));
      }
    }
    HTD_CHECK_EQ(rel.arity, static_cast<int>(atom.variables.size()))
        << "relation " << atom.relation << " used with inconsistent arity";
    if (plant) {
      Tuple tuple;
      for (const std::string& variable : atom.variables) {
        tuple.push_back(spine_value(variable));
      }
      rel.tuples.push_back(std::move(tuple));
    }
  }
  for (auto& [name, rel] : relations) db.AddRelation(std::move(rel));
  return db;
}

}  // namespace htd::cq
