#include "cq/yannakakis.h"

#include <algorithm>
#include <functional>
#include <unordered_set>
#include <vector>

#include "util/logging.h"

namespace htd::cq {
namespace {

struct TupleHash {
  size_t operator()(const Tuple& tuple) const {
    size_t h = 1469598103934665603ull;
    for (int64_t v : tuple) {
      h ^= static_cast<uint64_t>(v) + 0x9e3779b97f4a7c15ull;
      h *= 1099511628211ull;
    }
    return h;
  }
};

using TupleSet = std::unordered_set<Tuple, TupleHash>;

// A relation over hypergraph vertices (query variables).
struct VarRel {
  std::vector<int> vars;      // vertex ids, one per column
  std::vector<Tuple> tuples;  // aligned with vars
};

// Positions of `keys` inside `vars` (-1 if absent).
std::vector<int> Positions(const std::vector<int>& vars, const std::vector<int>& keys) {
  std::vector<int> positions;
  positions.reserve(keys.size());
  for (int key : keys) {
    auto it = std::find(vars.begin(), vars.end(), key);
    positions.push_back(it == vars.end() ? -1
                                         : static_cast<int>(it - vars.begin()));
  }
  return positions;
}

std::vector<int> SharedVars(const std::vector<int>& a, const std::vector<int>& b) {
  std::vector<int> shared;
  for (int v : a) {
    if (std::find(b.begin(), b.end(), v) != b.end()) shared.push_back(v);
  }
  return shared;
}

Tuple ExtractKey(const Tuple& tuple, const std::vector<int>& positions) {
  Tuple key;
  key.reserve(positions.size());
  for (int p : positions) key.push_back(tuple[p]);
  return key;
}

// Loads an atom's relation as a VarRel over distinct variables, enforcing
// equality for repeated variables (e.g. R(X,X)) and deduplicating tuples
// (set semantics — required for counting to be well defined).
VarRel AtomRelation(const Atom& atom, const Relation& relation,
                    const Hypergraph& graph) {
  VarRel result;
  TupleSet seen;
  std::vector<int> columns;  // source column per output column
  for (size_t i = 0; i < atom.variables.size(); ++i) {
    int vertex = graph.FindVertex(atom.variables[i]);
    HTD_CHECK_GE(vertex, 0);
    if (std::find(result.vars.begin(), result.vars.end(), vertex) ==
        result.vars.end()) {
      result.vars.push_back(vertex);
      columns.push_back(static_cast<int>(i));
    }
  }
  for (const Tuple& tuple : relation.tuples) {
    // Repeated variables must carry equal values.
    bool consistent = true;
    for (size_t i = 0; i < atom.variables.size() && consistent; ++i) {
      for (size_t j = i + 1; j < atom.variables.size(); ++j) {
        if (atom.variables[i] == atom.variables[j] && tuple[i] != tuple[j]) {
          consistent = false;
          break;
        }
      }
    }
    if (!consistent) continue;
    Tuple out;
    out.reserve(columns.size());
    for (int c : columns) out.push_back(tuple[c]);
    if (seen.insert(out).second) result.tuples.push_back(std::move(out));
  }
  return result;
}

VarRel Join(const VarRel& left, const VarRel& right) {
  std::vector<int> shared = SharedVars(left.vars, right.vars);
  std::vector<int> left_pos = Positions(left.vars, shared);
  std::vector<int> right_pos = Positions(right.vars, shared);
  // Output schema: left vars then right-only vars.
  VarRel result;
  result.vars = left.vars;
  std::vector<int> right_extra;
  for (size_t i = 0; i < right.vars.size(); ++i) {
    if (std::find(shared.begin(), shared.end(), right.vars[i]) == shared.end()) {
      result.vars.push_back(right.vars[i]);
      right_extra.push_back(static_cast<int>(i));
    }
  }
  std::unordered_map<Tuple, std::vector<const Tuple*>, TupleHash> index;
  for (const Tuple& t : right.tuples) {
    index[ExtractKey(t, right_pos)].push_back(&t);
  }
  for (const Tuple& t : left.tuples) {
    auto it = index.find(ExtractKey(t, left_pos));
    if (it == index.end()) continue;
    for (const Tuple* r : it->second) {
      Tuple out = t;
      for (int c : right_extra) out.push_back((*r)[c]);
      result.tuples.push_back(std::move(out));
    }
  }
  return result;
}

VarRel ProjectTo(const VarRel& rel, const std::vector<int>& vars) {
  std::vector<int> positions = Positions(rel.vars, vars);
  for (int p : positions) HTD_CHECK_GE(p, 0);
  VarRel result;
  result.vars = vars;
  TupleSet seen;
  for (const Tuple& t : rel.tuples) {
    Tuple out = ExtractKey(t, positions);
    if (seen.insert(out).second) result.tuples.push_back(std::move(out));
  }
  return result;
}

// Keeps left tuples whose shared-variable key appears in right.
void SemijoinInPlace(VarRel& left, const VarRel& right) {
  std::vector<int> shared = SharedVars(left.vars, right.vars);
  if (shared.empty()) {
    if (right.tuples.empty()) left.tuples.clear();
    return;
  }
  std::vector<int> left_pos = Positions(left.vars, shared);
  std::vector<int> right_pos = Positions(right.vars, shared);
  TupleSet keys;
  for (const Tuple& t : right.tuples) keys.insert(ExtractKey(t, right_pos));
  std::erase_if(left.tuples, [&](const Tuple& t) {
    return keys.count(ExtractKey(t, left_pos)) == 0;
  });
}

// Loads atom relations (schema-checked), assigns atoms to covering nodes and
// materialises each node's relation: join of λ-atoms projected to χ,
// semijoin-filtered by the atoms assigned to the node. Shared by Boolean
// evaluation and counting.
util::StatusOr<std::vector<VarRel>> BuildNodeRelations(const Query& query,
                                                       const Database& db,
                                                       const Decomposition& decomp,
                                                       const Hypergraph& graph) {
  std::vector<VarRel> atom_rels;
  atom_rels.reserve(query.atoms.size());
  for (const Atom& atom : query.atoms) {
    const Relation* relation = db.Find(atom.relation);
    if (relation == nullptr) {
      return util::Status::InvalidArgument("relation '" + atom.relation +
                                           "' not in database");
    }
    if (relation->arity != static_cast<int>(atom.variables.size())) {
      return util::Status::InvalidArgument("arity mismatch for '" + atom.relation +
                                           "'");
    }
    atom_rels.push_back(AtomRelation(atom, *relation, graph));
  }

  if (decomp.num_nodes() == 0) {
    // Empty query hypergraph cannot happen (ParseQuery requires atoms).
    return util::Status::InvalidArgument("empty decomposition");
  }

  // Assign every atom to one covering node (HD condition 1 guarantees one).
  std::vector<std::vector<int>> atoms_at_node(decomp.num_nodes());
  for (int a = 0; a < graph.num_edges(); ++a) {
    int home = -1;
    for (int u = 0; u < decomp.num_nodes() && home < 0; ++u) {
      if (graph.edge_vertices(a).IsSubsetOf(decomp.node(u).chi)) home = u;
    }
    if (home < 0) {
      return util::Status::InvalidArgument(
          "decomposition does not cover atom " + std::to_string(a) +
          " (not a decomposition of this query?)");
    }
    atoms_at_node[home].push_back(a);
  }

  std::vector<VarRel> node_rel(decomp.num_nodes());
  for (int u = 0; u < decomp.num_nodes(); ++u) {
    const DecompNode& node = decomp.node(u);
    HTD_CHECK(!node.lambda.empty());
    VarRel rel = atom_rels[node.lambda[0]];
    for (size_t i = 1; i < node.lambda.size(); ++i) {
      rel = Join(rel, atom_rels[node.lambda[i]]);
    }
    rel = ProjectTo(rel, node.chi.ToVector());
    for (int a : atoms_at_node[u]) SemijoinInPlace(rel, atom_rels[a]);
    node_rel[u] = std::move(rel);
  }
  return node_rel;
}

}  // namespace

util::StatusOr<EvalResult> EvaluateWithDecomposition(const Query& query,
                                                     const Database& db,
                                                     const Decomposition& decomp) {
  Hypergraph graph = QueryHypergraph(query);
  auto built = BuildNodeRelations(query, db, decomp, graph);
  if (!built.ok()) return built.status();
  std::vector<VarRel> node_rel = std::move(*built);

  // Yannakakis phase 1: bottom-up semijoins.
  std::function<void(int)> up = [&](int u) {
    for (int c : decomp.node(u).children) {
      up(c);
      SemijoinInPlace(node_rel[u], node_rel[c]);
    }
  };
  up(decomp.root());

  EvalResult result;
  if (node_rel[decomp.root()].tuples.empty()) return result;  // unsatisfiable
  result.satisfiable = true;

  // Phase 2: top-down semijoins (makes every node globally consistent).
  std::function<void(int)> down = [&](int u) {
    for (int c : decomp.node(u).children) {
      SemijoinInPlace(node_rel[c], node_rel[u]);
      down(c);
    }
  };
  down(decomp.root());

  // Witness: choose the root tuple, then per child a tuple agreeing on the
  // shared variables (one exists after the two sweeps; connectedness makes
  // the union of choices a consistent assignment).
  std::unordered_map<int, int64_t> assignment;  // vertex -> value
  std::function<void(int, const Tuple&)> pick = [&](int u, const Tuple& chosen) {
    const VarRel& rel = node_rel[u];
    for (size_t i = 0; i < rel.vars.size(); ++i) assignment[rel.vars[i]] = chosen[i];
    for (int c : decomp.node(u).children) {
      const VarRel& child = node_rel[c];
      std::vector<int> shared = SharedVars(child.vars, rel.vars);
      std::vector<int> child_pos = Positions(child.vars, shared);
      std::vector<int> parent_pos = Positions(rel.vars, shared);
      Tuple want = ExtractKey(chosen, parent_pos);
      const Tuple* match = nullptr;
      for (const Tuple& t : child.tuples) {
        if (ExtractKey(t, child_pos) == want) {
          match = &t;
          break;
        }
      }
      HTD_CHECK(match != nullptr) << "semijoin reduction left no consistent tuple";
      pick(c, *match);
    }
  };
  pick(decomp.root(), node_rel[decomp.root()].tuples.front());
  for (const auto& [vertex, value] : assignment) {
    result.witness[graph.vertex_name(vertex)] = value;
  }
  return result;
}


namespace {

// Saturating 128-bit weight for the counting DP. Zero annihilates exactly
// (0 · anything = 0, never "saturated zero"), so unsatisfiable branches stay
// exact no matter how large their siblings grew.
struct SatWeight {
  unsigned __int128 v = 0;
  bool sat = false;
};

constexpr unsigned __int128 kSatCap = ~static_cast<unsigned __int128>(0);

SatWeight SatMul(const SatWeight& a, const SatWeight& b) {
  if (a.v == 0 || b.v == 0) return {0, false};
  if (a.sat || b.sat || a.v > kSatCap / b.v) return {kSatCap, true};
  return {a.v * b.v, false};
}

SatWeight SatAdd(const SatWeight& a, const SatWeight& b) {
  if (a.sat || b.sat || kSatCap - a.v < b.v) return {kSatCap, true};
  return {a.v + b.v, false};
}

}  // namespace

util::StatusOr<SolutionCount> CountSolutions(const Query& query,
                                             const Database& db,
                                             const Decomposition& decomp) {
  Hypergraph graph = QueryHypergraph(query);
  auto built = BuildNodeRelations(query, db, decomp, graph);
  if (!built.ok()) return built.status();
  std::vector<VarRel> node_rel = std::move(*built);

  // Dynamic program over the decomposition tree (tractable counting via
  // decompositions; cf. Pichler & Skritek, cited in the paper's intro):
  // weight(u, t) = product over children c of the summed weights of the
  // c-tuples consistent with t. Connectedness makes tuple trees correspond
  // one-to-one to satisfying assignments of all query variables, so the
  // answer count is the weight sum at the root.
  std::vector<std::vector<SatWeight>> weight(decomp.num_nodes());
  std::function<void(int)> up = [&](int u) {
    weight[u].assign(node_rel[u].tuples.size(), SatWeight{1, false});
    for (int c : decomp.node(u).children) {
      up(c);
      const VarRel& child = node_rel[c];
      const VarRel& mine = node_rel[u];
      std::vector<int> shared = SharedVars(child.vars, mine.vars);
      std::vector<int> child_pos = Positions(child.vars, shared);
      std::vector<int> my_pos = Positions(mine.vars, shared);
      std::unordered_map<Tuple, SatWeight, TupleHash> sums;
      for (size_t i = 0; i < child.tuples.size(); ++i) {
        SatWeight& slot = sums[ExtractKey(child.tuples[i], child_pos)];
        slot = SatAdd(slot, weight[c][i]);
      }
      for (size_t i = 0; i < mine.tuples.size(); ++i) {
        auto it = sums.find(ExtractKey(mine.tuples[i], my_pos));
        weight[u][i] = it == sums.end() ? SatWeight{0, false}
                                        : SatMul(weight[u][i], it->second);
      }
    }
  };
  up(decomp.root());

  SatWeight total;
  for (const SatWeight& w : weight[decomp.root()]) total = SatAdd(total, w);

  constexpr unsigned long long kMax = ~0ull;
  if (total.sat || total.v > static_cast<unsigned __int128>(kMax)) {
    return SolutionCount{kMax, true};
  }
  return SolutionCount{static_cast<unsigned long long>(total.v), false};
}

util::StatusOr<unsigned long long> CountSolutionsBruteForce(const Query& query,
                                                            const Database& db) {
  Hypergraph graph = QueryHypergraph(query);
  std::vector<VarRel> atom_rels;
  for (const Atom& atom : query.atoms) {
    const Relation* relation = db.Find(atom.relation);
    if (relation == nullptr) {
      return util::Status::InvalidArgument("relation '" + atom.relation +
                                           "' not in database");
    }
    if (relation->arity != static_cast<int>(atom.variables.size())) {
      return util::Status::InvalidArgument("arity mismatch for '" + atom.relation +
                                           "'");
    }
    atom_rels.push_back(AtomRelation(atom, *relation, graph));
  }
  // With set semantics, each satisfying assignment corresponds to exactly
  // one choice of tuple per atom, so counting leaves counts assignments.
  std::unordered_map<int, int64_t> assignment;
  unsigned long long count = 0;
  std::function<void(size_t)> search = [&](size_t index) {
    if (index == atom_rels.size()) {
      ++count;
      return;
    }
    const VarRel& rel = atom_rels[index];
    for (const Tuple& t : rel.tuples) {
      bool consistent = true;
      std::vector<int> newly_bound;
      for (size_t i = 0; i < rel.vars.size() && consistent; ++i) {
        auto it = assignment.find(rel.vars[i]);
        if (it == assignment.end()) {
          assignment[rel.vars[i]] = t[i];
          newly_bound.push_back(rel.vars[i]);
        } else if (it->second != t[i]) {
          consistent = false;
        }
      }
      if (consistent) search(index + 1);
      for (int v : newly_bound) assignment.erase(v);
    }
  };
  search(0);
  return count;
}

util::StatusOr<EvalResult> EvaluateBruteForce(const Query& query, const Database& db) {
  Hypergraph graph = QueryHypergraph(query);
  std::vector<VarRel> atom_rels;
  for (const Atom& atom : query.atoms) {
    const Relation* relation = db.Find(atom.relation);
    if (relation == nullptr) {
      return util::Status::InvalidArgument("relation '" + atom.relation +
                                           "' not in database");
    }
    if (relation->arity != static_cast<int>(atom.variables.size())) {
      return util::Status::InvalidArgument("arity mismatch for '" + atom.relation +
                                           "'");
    }
    atom_rels.push_back(AtomRelation(atom, *relation, graph));
  }

  std::unordered_map<int, int64_t> assignment;
  std::function<bool(size_t)> search = [&](size_t index) -> bool {
    if (index == atom_rels.size()) return true;
    const VarRel& rel = atom_rels[index];
    for (const Tuple& t : rel.tuples) {
      bool consistent = true;
      std::vector<int> newly_bound;
      for (size_t i = 0; i < rel.vars.size() && consistent; ++i) {
        auto it = assignment.find(rel.vars[i]);
        if (it == assignment.end()) {
          assignment[rel.vars[i]] = t[i];
          newly_bound.push_back(rel.vars[i]);
        } else if (it->second != t[i]) {
          consistent = false;
        }
      }
      if (consistent && search(index + 1)) return true;
      for (int v : newly_bound) assignment.erase(v);
    }
    return false;
  };

  EvalResult result;
  result.satisfiable = search(0);
  if (result.satisfiable) {
    for (const auto& [vertex, value] : assignment) {
      result.witness[graph.vertex_name(vertex)] = value;
    }
  }
  return result;
}

}  // namespace htd::cq
