// HD-guided conjunctive-query evaluation (Yannakakis 1981).
//
// This is the application that motivates the paper (§1): an HD of width k
// reduces CQ evaluation to an acyclic instance — each decomposition node
// materialises the ≤ k-way join of its λ-atoms projected to its bag, atoms
// are enforced at a covering node, and two semi-join sweeps (bottom-up, then
// top-down) make the tree globally consistent in time polynomial for fixed
// k. A witness assignment is then read off top-down.
//
// EvaluateBruteForce provides the oracle the tests compare against.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>

#include "cq/database.h"
#include "cq/query.h"
#include "decomp/decomposition.h"
#include "util/status.h"

namespace htd::cq {

struct EvalResult {
  bool satisfiable = false;
  /// A satisfying assignment (variable name → value) when satisfiable.
  std::unordered_map<std::string, int64_t> witness;
};

/// Evaluates `query` on `db` guided by an HD (or GHD) of the query's
/// hypergraph. `decomp` must be a decomposition of QueryHypergraph(query).
/// Fails with InvalidArgument if a relation is missing or arities mismatch.
util::StatusOr<EvalResult> EvaluateWithDecomposition(const Query& query,
                                                     const Database& db,
                                                     const Decomposition& decomp);

/// Baseline: backtracking join over the atoms (exponential; for testing).
util::StatusOr<EvalResult> EvaluateBruteForce(const Query& query, const Database& db);

/// Answer count with explicit overflow signalling. When `saturated` is set,
/// the true count exceeds ULLONG_MAX and `value` is pinned at ULLONG_MAX;
/// otherwise `value` is exact.
struct SolutionCount {
  unsigned long long value = 0;
  bool saturated = false;
};

/// Counts the satisfying assignments of the (full) CQ under set semantics by
/// dynamic programming over the decomposition — the tractable counting
/// application the paper's introduction cites (Pichler & Skritek 2013).
/// The DP accumulates in unsigned __int128 with saturating arithmetic, so a
/// count that no longer fits is reported via SolutionCount::saturated
/// instead of silently wrapping.
util::StatusOr<SolutionCount> CountSolutions(const Query& query,
                                             const Database& db,
                                             const Decomposition& decomp);

/// Exponential counting oracle for tests.
util::StatusOr<unsigned long long> CountSolutionsBruteForce(const Query& query,
                                                            const Database& db);

}  // namespace htd::cq
