// Conjunctive queries and their hypergraphs.
//
// The paper's motivating application (§1, §2): a CQ/CSP is an {∃,∧}-formula;
// its hypergraph has the variables as vertices and one edge per atom's
// variable set. Everything downstream (decomposition, Yannakakis) works on
// that hypergraph with edge id == atom index.
#pragma once

#include <string>
#include <vector>

#include "hypergraph/hypergraph.h"
#include "util/status.h"

namespace htd::cq {

struct Atom {
  std::string relation;                ///< relation symbol
  std::vector<std::string> variables;  ///< argument list, duplicates allowed
};

struct Query {
  std::vector<Atom> atoms;
};

/// Parses "R(X,Y), S(Y,Z), T(Z,X)." — identifiers for relations/variables,
/// ','-separated atoms, optional trailing '.'.
util::StatusOr<Query> ParseQuery(const std::string& text);

/// H_phi: vertex per variable, edge per atom (edge id == atom index).
Hypergraph QueryHypergraph(const Query& query);

}  // namespace htd::cq
