// A minimal in-memory relational store for the CQ/CSP examples and tests.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "cq/query.h"
#include "util/rng.h"
#include "util/status.h"

namespace htd::cq {

using Tuple = std::vector<int64_t>;

struct Relation {
  std::string name;
  int arity = 0;
  std::vector<Tuple> tuples;
};

class Database {
 public:
  /// Adds (or replaces) a relation.
  void AddRelation(Relation relation);
  /// Looks up by name; nullptr if absent.
  const Relation* Find(const std::string& name) const;

 private:
  std::unordered_map<std::string, Relation> relations_;
};

/// Generates a random database for `query`: one relation per distinct symbol,
/// `tuples_per_relation` tuples over [0, domain_size). A seeded "spine"
/// assignment is inserted into every relation with probability
/// `satisfiable_bias`, controlling whether the instance is likely satisfiable.
Database RandomDatabase(util::Rng& rng, const Query& query, int domain_size,
                        int tuples_per_relation, double satisfiable_bias);

}  // namespace htd::cq
