#include "hypergraph/hypergraph.h"

#include <algorithm>
#include <sstream>

namespace htd {

int Hypergraph::GetOrAddVertex(const std::string& name) {
  auto it = vertex_index_.find(name);
  if (it != vertex_index_.end()) return it->second;
  int id = num_vertices();
  vertex_index_.emplace(name, id);
  vertex_names_.push_back(name);
  incidence_.emplace_back();
  return id;
}

int Hypergraph::AddVertex() {
  // Pick a fresh auto-name; user-supplied names may collide with "v<i>".
  int id = num_vertices();
  std::string name = "v" + std::to_string(id);
  while (vertex_index_.count(name) > 0) name += "_";
  return GetOrAddVertex(name);
}

util::StatusOr<int> Hypergraph::AddEdge(std::string name,
                                        const std::vector<int>& vertices) {
  if (vertices.empty()) {
    return util::Status::InvalidArgument("edge '" + name + "' has no vertices");
  }
  std::vector<int> sorted = vertices;
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  for (int v : sorted) {
    if (v < 0 || v >= num_vertices()) {
      return util::Status::InvalidArgument("edge '" + name +
                                           "' references unknown vertex id " +
                                           std::to_string(v));
    }
  }
  // Keep the invariant that every edge bitset spans the current vertex
  // universe; edges created before later vertices are grown in place.
  for (Edge& existing : edges_) {
    if (existing.vertices.size_bits() < num_vertices()) {
      existing.vertices.GrowUniverse(num_vertices());
    }
  }
  int id = num_edges();
  Edge edge;
  edge.name = std::move(name);
  edge.vertices = util::DynamicBitset::FromVector(num_vertices(), sorted);
  edge.vertex_list = std::move(sorted);
  for (int v : edge.vertex_list) incidence_[v].push_back(id);
  edge_index_.emplace(edge.name, id);
  edges_.push_back(std::move(edge));
  return id;
}

util::StatusOr<int> Hypergraph::AddEdge(const std::vector<int>& vertices) {
  std::string name = "e" + std::to_string(num_edges());
  while (edge_index_.count(name) > 0) name += "_";
  return AddEdge(std::move(name), vertices);
}

int Hypergraph::FindVertex(const std::string& name) const {
  auto it = vertex_index_.find(name);
  return it == vertex_index_.end() ? -1 : it->second;
}

int Hypergraph::FindEdge(const std::string& name) const {
  auto it = edge_index_.find(name);
  return it == edge_index_.end() ? -1 : it->second;
}

util::DynamicBitset Hypergraph::AllVertices() const {
  util::DynamicBitset all(num_vertices());
  all.SetAll();
  return all;
}

util::DynamicBitset Hypergraph::AllEdges() const {
  util::DynamicBitset all(num_edges());
  all.SetAll();
  return all;
}

util::DynamicBitset Hypergraph::UnionOfEdges(const std::vector<int>& edge_ids) const {
  util::DynamicBitset result(num_vertices());
  for (int e : edge_ids) {
    HTD_DCHECK(e >= 0 && e < num_edges());
    // Edge bitsets may be over a smaller (older) vertex universe; normalise.
    for (int v : edges_[e].vertex_list) result.Set(v);
  }
  return result;
}

util::DynamicBitset Hypergraph::UnionOfEdges(const util::DynamicBitset& edge_set) const {
  util::DynamicBitset result(num_vertices());
  edge_set.ForEach([&](int e) {
    for (int v : edges_[e].vertex_list) result.Set(v);
  });
  return result;
}

bool Hypergraph::HasIsolatedVertices() const {
  for (int v = 0; v < num_vertices(); ++v) {
    if (incidence_[v].empty()) return true;
  }
  return false;
}

std::string Hypergraph::ToString() const {
  std::ostringstream out;
  out << "Hypergraph(|V|=" << num_vertices() << ", |E|=" << num_edges() << ")\n";
  for (int e = 0; e < num_edges(); ++e) {
    out << "  " << edges_[e].name << "(";
    for (size_t i = 0; i < edges_[e].vertex_list.size(); ++i) {
      if (i > 0) out << ",";
      out << vertex_names_[edges_[e].vertex_list[i]];
    }
    out << ")\n";
  }
  return out.str();
}

}  // namespace htd
