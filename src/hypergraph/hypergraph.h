// Hypergraph: the central input structure.
//
// A hypergraph H = (V(H), E(H)) with dense integer vertex and edge ids.
// Edge contents are stored both as a vertex bitset (for set algebra in the
// decomposition algorithms) and as a sorted id list (for iteration and I/O).
// Vertex/edge names are retained for parsing and pretty-printing; following
// the paper (§2), isolated vertices do not exist: every vertex belongs to at
// least one edge once construction is finished.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "util/bitset.h"
#include "util/status.h"

namespace htd {

class Hypergraph {
 public:
  Hypergraph() = default;

  /// Returns the id of the named vertex, creating it if new.
  int GetOrAddVertex(const std::string& name);

  /// Adds an anonymous vertex ("v<i>").
  int AddVertex();

  /// Adds an edge over existing vertex ids. Duplicate vertices within the
  /// edge are collapsed; empty edges are rejected (paper assumes non-empty).
  util::StatusOr<int> AddEdge(std::string name, const std::vector<int>& vertices);

  /// Convenience overload with an auto-generated name ("e<i>").
  util::StatusOr<int> AddEdge(const std::vector<int>& vertices);

  int num_vertices() const { return static_cast<int>(vertex_names_.size()); }
  int num_edges() const { return static_cast<int>(edges_.size()); }

  const util::DynamicBitset& edge_vertices(int e) const { return edges_[e].vertices; }
  const std::vector<int>& edge_vertex_list(int e) const { return edges_[e].vertex_list; }
  const std::string& edge_name(int e) const { return edges_[e].name; }
  const std::string& vertex_name(int v) const { return vertex_names_[v]; }

  /// Edges incident to a vertex, ascending.
  const std::vector<int>& edges_of_vertex(int v) const { return incidence_[v]; }

  /// Looks up a vertex by name; -1 if absent.
  int FindVertex(const std::string& name) const;
  /// Looks up an edge by name; -1 if absent (first match if duplicated).
  int FindEdge(const std::string& name) const;

  /// Bitset with every vertex set.
  util::DynamicBitset AllVertices() const;
  /// Bitset with every edge set.
  util::DynamicBitset AllEdges() const;

  /// Union of the vertex sets of the given edges: ⋃λ.
  util::DynamicBitset UnionOfEdges(const std::vector<int>& edge_ids) const;
  util::DynamicBitset UnionOfEdges(const util::DynamicBitset& edge_set) const;

  /// True iff any vertex appears in no edge (violates the paper's w.l.o.g.
  /// assumption; parsers and generators never produce this).
  bool HasIsolatedVertices() const;

  std::string ToString() const;

 private:
  struct Edge {
    std::string name;
    util::DynamicBitset vertices;
    std::vector<int> vertex_list;
  };

  std::vector<std::string> vertex_names_;
  std::unordered_map<std::string, int> vertex_index_;
  std::vector<Edge> edges_;
  std::unordered_map<std::string, int> edge_index_;
  std::vector<std::vector<int>> incidence_;
};

}  // namespace htd
