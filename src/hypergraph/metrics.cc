#include "hypergraph/metrics.h"

#include <algorithm>

namespace htd {

HypergraphStats ComputeStats(const Hypergraph& graph) {
  HypergraphStats stats;
  stats.num_vertices = graph.num_vertices();
  stats.num_edges = graph.num_edges();
  long arity_sum = 0;
  for (int e = 0; e < graph.num_edges(); ++e) {
    int arity = static_cast<int>(graph.edge_vertex_list(e).size());
    stats.max_arity = std::max(stats.max_arity, arity);
    arity_sum += arity;
  }
  stats.avg_arity =
      graph.num_edges() == 0 ? 0.0 : static_cast<double>(arity_sum) / graph.num_edges();
  long degree_sum = 0;
  for (int v = 0; v < graph.num_vertices(); ++v) {
    int degree = static_cast<int>(graph.edges_of_vertex(v).size());
    stats.max_degree = std::max(stats.max_degree, degree);
    degree_sum += degree;
  }
  stats.avg_degree = graph.num_vertices() == 0
                         ? 0.0
                         : static_cast<double>(degree_sum) / graph.num_vertices();
  return stats;
}

}  // namespace htd
