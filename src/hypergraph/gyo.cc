#include "hypergraph/gyo.h"

#include <vector>

#include "util/bitset.h"

namespace htd {
namespace {

// Runs the GYO reduction. Returns the parent assignment if it empties the
// hypergraph (acyclic), std::nullopt otherwise.
std::optional<std::vector<int>> Reduce(const Hypergraph& graph) {
  int m = graph.num_edges();
  int n = graph.num_vertices();
  if (m == 0) return std::vector<int>{};
  std::vector<util::DynamicBitset> current;
  current.reserve(m);
  for (int e = 0; e < m; ++e) current.push_back(graph.edge_vertices(e));
  std::vector<bool> alive(m, true);
  std::vector<int> parent(m, -1);
  std::vector<int> occurrence_count(n, 0);

  int alive_count = m;
  bool changed = true;
  while (changed && alive_count > 1) {
    changed = false;
    // Rule 1: drop vertices occurring in exactly one alive edge ("ears").
    std::fill(occurrence_count.begin(), occurrence_count.end(), 0);
    for (int e = 0; e < m; ++e) {
      if (!alive[e]) continue;
      current[e].ForEach([&](int v) { ++occurrence_count[v]; });
    }
    for (int e = 0; e < m; ++e) {
      if (!alive[e]) continue;
      std::vector<int> to_drop;
      current[e].ForEach([&](int v) {
        if (occurrence_count[v] == 1) to_drop.push_back(v);
      });
      for (int v : to_drop) {
        current[e].Reset(v);
        changed = true;
      }
    }
    // Rule 2: absorb edges contained in another alive edge.
    for (int e = 0; e < m && alive_count > 1; ++e) {
      if (!alive[e]) continue;
      for (int f = 0; f < m; ++f) {
        if (f == e || !alive[f]) continue;
        if (current[e].IsSubsetOf(current[f])) {
          alive[e] = false;
          parent[e] = f;
          --alive_count;
          changed = true;
          break;
        }
      }
    }
  }
  if (alive_count > 1) return std::nullopt;
  return parent;
}

}  // namespace

bool IsAlphaAcyclic(const Hypergraph& graph) { return Reduce(graph).has_value(); }

std::optional<JoinTree> BuildJoinTree(const Hypergraph& graph) {
  auto parent = Reduce(graph);
  if (!parent.has_value()) return std::nullopt;
  JoinTree tree;
  tree.parent = std::move(*parent);
  return tree;
}

}  // namespace htd
