#include "hypergraph/generators.h"

#include <algorithm>
#include <string>
#include <vector>

#include "util/logging.h"

namespace htd {
namespace {

std::vector<int> AddVertices(Hypergraph& graph, int count, const std::string& prefix) {
  std::vector<int> ids(count);
  for (int i = 0; i < count; ++i) {
    ids[i] = graph.GetOrAddVertex(prefix + std::to_string(i));
  }
  return ids;
}

void MustAddEdge(Hypergraph& graph, const std::string& name,
                 const std::vector<int>& vertices) {
  auto result = graph.AddEdge(name, vertices);
  HTD_CHECK(result.ok()) << result.status().message();
}

}  // namespace

Hypergraph MakePath(int n) {
  HTD_CHECK_GE(n, 2);
  Hypergraph graph;
  auto v = AddVertices(graph, n, "x");
  for (int i = 0; i + 1 < n; ++i) {
    MustAddEdge(graph, "R" + std::to_string(i + 1), {v[i], v[i + 1]});
  }
  return graph;
}

Hypergraph MakeCycle(int n) {
  HTD_CHECK_GE(n, 3);
  Hypergraph graph;
  auto v = AddVertices(graph, n, "x");
  for (int i = 0; i < n; ++i) {
    MustAddEdge(graph, "R" + std::to_string(i + 1), {v[i], v[(i + 1) % n]});
  }
  return graph;
}

Hypergraph MakeStar(int n) {
  HTD_CHECK_GE(n, 1);
  Hypergraph graph;
  int centre = graph.GetOrAddVertex("c");
  auto leaves = AddVertices(graph, n, "x");
  for (int i = 0; i < n; ++i) {
    MustAddEdge(graph, "R" + std::to_string(i + 1), {centre, leaves[i]});
  }
  return graph;
}

Hypergraph MakeGrid(int rows, int cols) {
  HTD_CHECK_GE(rows, 1);
  HTD_CHECK_GE(cols, 1);
  Hypergraph graph;
  std::vector<std::vector<int>> v(rows, std::vector<int>(cols));
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      v[r][c] = graph.GetOrAddVertex("x" + std::to_string(r) + "_" + std::to_string(c));
    }
  }
  int edge = 0;
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      if (c + 1 < cols) {
        MustAddEdge(graph, "H" + std::to_string(edge++), {v[r][c], v[r][c + 1]});
      }
      if (r + 1 < rows) {
        MustAddEdge(graph, "V" + std::to_string(edge++), {v[r][c], v[r + 1][c]});
      }
    }
  }
  return graph;
}

Hypergraph MakeClique(int n) {
  HTD_CHECK_GE(n, 2);
  Hypergraph graph;
  auto v = AddVertices(graph, n, "x");
  int edge = 0;
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      MustAddEdge(graph, "R" + std::to_string(edge++), {v[i], v[j]});
    }
  }
  return graph;
}

Hypergraph MakeHyperCycle(int length, int arity, int overlap) {
  HTD_CHECK_GE(length, 3);
  HTD_CHECK_GE(arity, 2);
  HTD_CHECK_GE(overlap, 1);
  HTD_CHECK_LT(overlap, arity);
  // Each edge introduces (arity - overlap) fresh vertices and reuses the last
  // `overlap` vertices of the previous edge; the final edge wraps around.
  int stride = arity - overlap;
  int n = length * stride;
  Hypergraph graph;
  auto v = AddVertices(graph, n, "x");
  for (int e = 0; e < length; ++e) {
    std::vector<int> vertices;
    for (int j = 0; j < arity; ++j) {
      vertices.push_back(v[(e * stride + j) % n]);
    }
    MustAddEdge(graph, "R" + std::to_string(e + 1), vertices);
  }
  return graph;
}

Hypergraph MakeAcyclicQuery(util::Rng& rng, int num_atoms, int max_arity) {
  HTD_CHECK_GE(num_atoms, 1);
  HTD_CHECK_GE(max_arity, 2);
  Hypergraph graph;
  // Atom 0 gets fresh variables; every later atom attaches to a random
  // earlier atom, sharing one of its variables (tree-shaped joins => acyclic).
  std::vector<std::vector<int>> atom_vars;
  int next_var = 0;
  for (int a = 0; a < num_atoms; ++a) {
    int arity = rng.UniformInt(2, max_arity);
    std::vector<int> vars;
    if (a > 0) {
      const auto& parent_vars = atom_vars[rng.UniformInt(0, a - 1)];
      vars.push_back(parent_vars[rng.UniformInt(
          0, static_cast<int>(parent_vars.size()) - 1)]);
    }
    while (static_cast<int>(vars.size()) < arity) {
      vars.push_back(graph.GetOrAddVertex("X" + std::to_string(next_var++)));
    }
    atom_vars.push_back(vars);
    MustAddEdge(graph, "A" + std::to_string(a + 1), vars);
  }
  return graph;
}

Hypergraph MakeRandomCq(util::Rng& rng, int num_atoms, int max_arity,
                        double extra_join_prob) {
  HTD_CHECK_GE(num_atoms, 2);
  Hypergraph graph;
  // Chain backbone with occasional long-range joins (the cross joins make the
  // query mildly cyclic, like hand-written application CQs).
  std::vector<std::vector<int>> atom_vars;
  int next_var = 0;
  auto fresh = [&]() { return graph.GetOrAddVertex("X" + std::to_string(next_var++)); };
  for (int a = 0; a < num_atoms; ++a) {
    int arity = rng.UniformInt(2, max_arity);
    std::vector<int> vars;
    if (a > 0) {
      vars.push_back(atom_vars[a - 1].back());  // chain join
    }
    if (a > 1 && rng.Chance(extra_join_prob)) {
      const auto& far = atom_vars[rng.UniformInt(0, a - 2)];
      vars.push_back(far[rng.UniformInt(0, static_cast<int>(far.size()) - 1)]);
    }
    while (static_cast<int>(vars.size()) < arity) vars.push_back(fresh());
    std::sort(vars.begin(), vars.end());
    vars.erase(std::unique(vars.begin(), vars.end()), vars.end());
    if (vars.size() < 2) vars.push_back(fresh());
    atom_vars.push_back(vars);
    MustAddEdge(graph, "A" + std::to_string(a + 1), vars);
  }
  return graph;
}

Hypergraph MakeRandomCsp(util::Rng& rng, int num_vars, int num_constraints,
                         int min_arity, int max_arity) {
  HTD_CHECK_GE(num_vars, max_arity);
  HTD_CHECK_GE(min_arity, 2);
  HTD_CHECK_LE(min_arity, max_arity);
  Hypergraph graph;
  AddVertices(graph, num_vars, "X");
  for (int c = 0; c < num_constraints; ++c) {
    int arity = rng.UniformInt(min_arity, max_arity);
    std::vector<int> vars = rng.SampleDistinct(0, num_vars - 1, arity);
    MustAddEdge(graph, "C" + std::to_string(c + 1), vars);
  }
  // CSP generators can leave variables unconstrained; attach each isolated
  // variable to a binary constraint so the no-isolated-vertices assumption
  // holds.
  int extra = 0;
  for (int v = 0; v < graph.num_vertices(); ++v) {
    if (graph.edges_of_vertex(v).empty()) {
      int other = (v + 1) % num_vars;
      MustAddEdge(graph, "Cx" + std::to_string(extra++), {v, other});
    }
  }
  return graph;
}

Hypergraph MakeCycleBundle(int num_cycles, int cycle_length) {
  HTD_CHECK_GE(num_cycles, 1);
  HTD_CHECK_GE(cycle_length, 3);
  Hypergraph graph;
  int hub = graph.GetOrAddVertex("hub");
  for (int c = 0; c < num_cycles; ++c) {
    std::vector<int> ring;
    ring.push_back(hub);
    for (int i = 1; i < cycle_length; ++i) {
      ring.push_back(
          graph.GetOrAddVertex("x" + std::to_string(c) + "_" + std::to_string(i)));
    }
    for (int i = 0; i < cycle_length; ++i) {
      MustAddEdge(graph, "R" + std::to_string(c) + "_" + std::to_string(i),
                  {ring[i], ring[(i + 1) % cycle_length]});
    }
  }
  return graph;
}

Hypergraph AddRedundancy(const Hypergraph& base, util::Rng& rng,
                         int subsumed_edges, int twin_vertices) {
  Hypergraph graph;
  for (int v = 0; v < base.num_vertices(); ++v) {
    graph.GetOrAddVertex(base.vertex_name(v));
  }

  // Payload columns first (edges are immutable once added): payload i rides
  // along a host vertex into every edge containing the host, making the two
  // twins — the non-join attributes of a wide relation. hw is unchanged:
  // contracting the twin recovers `base` exactly.
  std::vector<std::vector<int>> payload_of(base.num_vertices());
  for (int i = 0; i < twin_vertices; ++i) {
    int host = rng.UniformInt(0, base.num_vertices() - 1);
    payload_of[host].push_back(graph.GetOrAddVertex("payload" + std::to_string(i)));
  }
  for (int e = 0; e < base.num_edges(); ++e) {
    std::vector<int> widened = base.edge_vertex_list(e);
    for (int v : base.edge_vertex_list(e)) {
      widened.insert(widened.end(), payload_of[v].begin(), payload_of[v].end());
    }
    MustAddEdge(graph, base.edge_name(e), widened);
  }

  // Projection atoms: strict subsets of original edges (subsumed, so again
  // hw-neutral; models SELECT-list helper relations in real CQ sets).
  for (int i = 0; i < subsumed_edges; ++i) {
    int host = rng.UniformInt(0, base.num_edges() - 1);
    const std::vector<int>& vertices = base.edge_vertex_list(host);
    if (vertices.size() < 2) continue;
    int keep = rng.UniformInt(1, static_cast<int>(vertices.size()) - 1);
    std::vector<int> subset;
    for (int j : rng.SampleDistinct(0, static_cast<int>(vertices.size()) - 1, keep)) {
      subset.push_back(vertices[j]);
    }
    MustAddEdge(graph, "proj" + std::to_string(i), subset);
  }
  return graph;
}

Hypergraph AddRandomChords(const Hypergraph& base, util::Rng& rng, int count) {
  Hypergraph graph;
  for (int v = 0; v < base.num_vertices(); ++v) {
    graph.GetOrAddVertex(base.vertex_name(v));
  }
  for (int e = 0; e < base.num_edges(); ++e) {
    MustAddEdge(graph, base.edge_name(e), base.edge_vertex_list(e));
  }
  int n = graph.num_vertices();
  for (int i = 0; i < count; ++i) {
    int arity = rng.UniformInt(2, std::min(3, n));
    std::vector<int> vars = rng.SampleDistinct(0, n - 1, arity);
    MustAddEdge(graph, "chord" + std::to_string(i), vars);
  }
  return graph;
}

}  // namespace htd
