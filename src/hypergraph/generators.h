// Synthetic hypergraph families.
//
// These serve two purposes:
//  * tests: families with known hypertree width (paths/acyclic CQs: hw = 1,
//    cycles of length >= 4: hw = 2, ...) anchor correctness assertions;
//  * benchmarks: mixtures of these families form the HyperBench-like corpus
//    (src/benchlib/corpus.*) substituting for the offline-unavailable
//    HyperBench data set (DESIGN.md §4).
//
// All generators are deterministic given their parameters (and Rng seed).
#pragma once

#include "hypergraph/hypergraph.h"
#include "util/rng.h"

namespace htd {

/// Path with n vertices and n-1 binary edges. Alpha-acyclic: hw = 1 (n >= 2).
Hypergraph MakePath(int n);

/// Cycle with n vertices and n binary edges, as in the paper's Appendix B
/// example. hw = 2 for every n >= 3 (a graph cycle is never alpha-acyclic).
Hypergraph MakeCycle(int n);

/// Star: one centre joined to n leaves by binary edges. hw = 1.
Hypergraph MakeStar(int n);

/// r x c grid graph (binary edges). Width grows with min(r, c).
Hypergraph MakeGrid(int rows, int cols);

/// Complete graph K_n as binary edges. High width (≈ n/2).
Hypergraph MakeClique(int n);

/// Cycle of `length` overlapping hyperedges of the given arity; consecutive
/// edges share `overlap` vertices. Generalises MakeCycle (arity 2, overlap 1).
Hypergraph MakeHyperCycle(int length, int arity, int overlap);

/// Random alpha-acyclic, tree-shaped conjunctive query: atoms are created by
/// walking a random tree and sharing `join_vars` variables along each tree
/// edge. hw = 1 by construction.
Hypergraph MakeAcyclicQuery(util::Rng& rng, int num_atoms, int max_arity);

/// Random "application CQ"-like hypergraph: a backbone chain of atoms with a
/// few cross-joins, low arity (2..max_arity), mild cyclicity. Models the
/// application instances of HyperBench (CQs from real workloads).
Hypergraph MakeRandomCq(util::Rng& rng, int num_atoms, int max_arity,
                        double extra_join_prob);

/// Random CSP-like hypergraph: higher arity constraints over a variable pool
/// with denser overlaps. Models HyperBench's synthetic CSP instances.
Hypergraph MakeRandomCsp(util::Rng& rng, int num_vars, int num_constraints,
                         int min_arity, int max_arity);

/// k disjoint cycles glued on a shared hub vertex; width stays ~2 while the
/// edge count scales linearly — a "large but easy" family.
Hypergraph MakeCycleBundle(int num_cycles, int cycle_length);

/// Adds `count` extra random edges (arity 2..3) to a copy of `base`,
/// increasing cyclicity; used for failure-injection and width growth tests.
Hypergraph AddRandomChords(const Hypergraph& base, util::Rng& rng, int count);

/// Injects hw-neutral redundancy of the kind real CQ/CSP sets carry:
/// `subsumed_edges` projection atoms (strict subsets of existing edges) and
/// `twin_vertices` payload columns (each rides a host vertex into all of its
/// edges). Preprocessing (src/prep/) removes all of it; hw is unchanged.
Hypergraph AddRedundancy(const Hypergraph& base, util::Rng& rng,
                         int subsumed_edges, int twin_vertices);

}  // namespace htd
