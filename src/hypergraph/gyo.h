// GYO (Graham / Yu-Ozsoyoglu) reduction and alpha-acyclicity.
//
// A hypergraph is alpha-acyclic iff GYO reduction (repeatedly delete "ear"
// vertices that occur in exactly one edge, and edges contained in another
// edge) empties it — and alpha-acyclicity is exactly hw(H) = 1. The optimal
// solver uses this as its width-1 fast path and lower bound, and the CQ layer
// uses the join tree that falls out of the reduction.
#pragma once

#include <optional>
#include <vector>

#include "hypergraph/hypergraph.h"

namespace htd {

/// A join tree: parent[i] is the parent edge-id of edge i (or -1 for a root,
/// or for edges absorbed as duplicates). For an acyclic hypergraph, edge i's
/// shared vertices with its subtree-exterior are contained in parent[i].
struct JoinTree {
  std::vector<int> parent;
};

/// Returns true iff the hypergraph is alpha-acyclic (equivalently hw ≤ 1).
bool IsAlphaAcyclic(const Hypergraph& graph);

/// Builds a join tree if the hypergraph is acyclic; std::nullopt otherwise.
std::optional<JoinTree> BuildJoinTree(const Hypergraph& graph);

}  // namespace htd
