// Serialisation of hypergraphs back to the community formats.
#pragma once

#include <string>

#include "hypergraph/hypergraph.h"

namespace htd {

/// Renders in HyperBench / det-k-decomp format ("name(v1,v2),\n...").
std::string WriteHyperBench(const Hypergraph& graph);

/// Renders in PACE 2019 'p htd' format.
std::string WritePace(const Hypergraph& graph);

}  // namespace htd
