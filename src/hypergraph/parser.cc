#include "hypergraph/parser.h"

#include <cctype>
#include <fstream>
#include <sstream>

namespace htd {
namespace {

// Strips '%'-to-end-of-line comments (HyperBench format).
std::string StripPercentComments(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  bool in_comment = false;
  for (char ch : text) {
    if (ch == '\n') {
      in_comment = false;
      out.push_back(ch);
    } else if (in_comment) {
      continue;
    } else if (ch == '%') {
      in_comment = true;
    } else {
      out.push_back(ch);
    }
  }
  return out;
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == ':' ||
         c == '-' || c == '.' || c == '[' || c == ']' || c == '\'' || c == '/' ||
         c == '+';
}

class HyperBenchScanner {
 public:
  explicit HyperBenchScanner(const std::string& text) : text_(text) {}

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool AtEnd() {
    SkipSpace();
    return pos_ >= text_.size();
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  char Peek() {
    SkipSpace();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  // Reads a maximal identifier; empty string on failure.
  std::string ReadIdent() {
    SkipSpace();
    size_t start = pos_;
    while (pos_ < text_.size() && IsIdentChar(text_[pos_])) ++pos_;
    return text_.substr(start, pos_ - start);
  }

  size_t pos() const { return pos_; }

 private:
  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

util::StatusOr<Hypergraph> ParseHyperBench(const std::string& raw) {
  std::string text = StripPercentComments(raw);
  HyperBenchScanner scan(text);
  Hypergraph graph;
  bool expect_more = true;
  while (!scan.AtEnd()) {
    if (!expect_more) {
      return util::Status::InvalidArgument(
          "trailing content after final '.' at offset " + std::to_string(scan.pos()));
    }
    std::string edge_name = scan.ReadIdent();
    if (edge_name.empty()) {
      return util::Status::InvalidArgument("expected edge name at offset " +
                                           std::to_string(scan.pos()));
    }
    if (!scan.Consume('(')) {
      return util::Status::InvalidArgument("expected '(' after edge '" + edge_name +
                                           "'");
    }
    std::vector<int> vertices;
    if (scan.Peek() != ')') {
      for (;;) {
        std::string vertex_name = scan.ReadIdent();
        if (vertex_name.empty()) {
          return util::Status::InvalidArgument("expected vertex name in edge '" +
                                               edge_name + "'");
        }
        vertices.push_back(graph.GetOrAddVertex(vertex_name));
        if (scan.Consume(',')) continue;
        break;
      }
    }
    if (!scan.Consume(')')) {
      return util::Status::InvalidArgument("expected ')' closing edge '" + edge_name +
                                           "'");
    }
    auto added = graph.AddEdge(edge_name, vertices);
    if (!added.ok()) return added.status();
    if (scan.Consume(',')) {
      expect_more = true;
    } else if (scan.Consume('.')) {
      expect_more = false;
    } else {
      // Newline-separated edges without ',' also occur in the wild.
      expect_more = true;
    }
  }
  if (graph.num_edges() == 0) {
    return util::Status::InvalidArgument("no edges found in HyperBench input");
  }
  return graph;
}

util::StatusOr<Hypergraph> ParsePace(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  int declared_vertices = -1;
  int declared_edges = -1;
  Hypergraph graph;
  int line_no = 0;
  int edges_seen = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == 'c') continue;
    std::istringstream fields(line);
    if (line[0] == 'p') {
      std::string p, fmt;
      fields >> p >> fmt >> declared_vertices >> declared_edges;
      if (fmt != "htd" && fmt != "hd") {
        return util::Status::InvalidArgument("line " + std::to_string(line_no) +
                                             ": unsupported format '" + fmt + "'");
      }
      if (declared_vertices < 0 || declared_edges < 0 || fields.fail()) {
        return util::Status::InvalidArgument("line " + std::to_string(line_no) +
                                             ": malformed problem line");
      }
      // Guard against absurd declarations: the header drives an eager
      // vertex allocation, so a corrupt size must not exhaust memory.
      constexpr int kMaxDeclaredVertices = 10'000'000;
      if (declared_vertices > kMaxDeclaredVertices) {
        return util::Status::InvalidArgument(
            "line " + std::to_string(line_no) + ": vertex count " +
            std::to_string(declared_vertices) + " exceeds the supported maximum");
      }
      for (int v = 1; v <= declared_vertices; ++v) {
        graph.GetOrAddVertex(std::to_string(v));
      }
      continue;
    }
    if (declared_vertices < 0) {
      return util::Status::InvalidArgument("edge data before 'p htd' header (line " +
                                           std::to_string(line_no) + ")");
    }
    int edge_id;
    if (!(fields >> edge_id)) {
      return util::Status::InvalidArgument("line " + std::to_string(line_no) +
                                           ": expected edge id");
    }
    std::vector<int> vertices;
    int v;
    while (fields >> v) {
      if (v < 1 || v > declared_vertices) {
        return util::Status::InvalidArgument("line " + std::to_string(line_no) +
                                             ": vertex " + std::to_string(v) +
                                             " out of range");
      }
      vertices.push_back(v - 1);
    }
    auto added = graph.AddEdge("e" + std::to_string(edge_id), vertices);
    if (!added.ok()) return added.status();
    ++edges_seen;
  }
  if (declared_vertices < 0) {
    return util::Status::InvalidArgument("missing 'p htd' header");
  }
  if (edges_seen != declared_edges) {
    return util::Status::InvalidArgument(
        "header declares " + std::to_string(declared_edges) + " edges but " +
        std::to_string(edges_seen) + " were found");
  }
  return graph;
}

util::StatusOr<Hypergraph> ParseAuto(const std::string& text) {
  // A PACE file has a 'p htd' problem line before any edge data.
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == 'c') continue;
    if (line.rfind("p ", 0) == 0) return ParsePace(text);
    break;
  }
  return ParseHyperBench(text);
}

util::StatusOr<Hypergraph> ParseFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return util::Status::NotFound("cannot open file: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseAuto(buffer.str());
}

}  // namespace htd
