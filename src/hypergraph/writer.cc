#include "hypergraph/writer.h"

#include <sstream>

namespace htd {

std::string WriteHyperBench(const Hypergraph& graph) {
  std::ostringstream out;
  for (int e = 0; e < graph.num_edges(); ++e) {
    out << graph.edge_name(e) << "(";
    const auto& vertices = graph.edge_vertex_list(e);
    for (size_t i = 0; i < vertices.size(); ++i) {
      if (i > 0) out << ",";
      out << graph.vertex_name(vertices[i]);
    }
    out << ")";
    out << (e + 1 == graph.num_edges() ? ".\n" : ",\n");
  }
  return out.str();
}

std::string WritePace(const Hypergraph& graph) {
  std::ostringstream out;
  out << "p htd " << graph.num_vertices() << " " << graph.num_edges() << "\n";
  for (int e = 0; e < graph.num_edges(); ++e) {
    out << (e + 1);
    for (int v : graph.edge_vertex_list(e)) out << " " << (v + 1);
    out << "\n";
  }
  return out.str();
}

}  // namespace htd
