// Parsers for the two on-disk hypergraph formats used by the HD community.
//
//  * HyperBench / det-k-decomp format:  lines of  name(v1,v2,...),  with the
//    final edge terminated by '.' or end of input; '%' starts a line comment.
//    This is the format of the 3648 HyperBench instances.
//  * PACE 2019 "htd" format:  a 'p htd <n> <m>' header followed by one line
//    per edge: <edge-id> <vertex-id>... ; 'c' lines are comments.
//
// ParseAuto sniffs the format. All parsers reject structurally invalid input
// with a descriptive Status rather than crashing.
#pragma once

#include <string>

#include "hypergraph/hypergraph.h"
#include "util/status.h"

namespace htd {

/// Parses the HyperBench / det-k-decomp "name(v1,v2,...)," format.
util::StatusOr<Hypergraph> ParseHyperBench(const std::string& text);

/// Parses the PACE 2019 hypertree ("p htd") format.
util::StatusOr<Hypergraph> ParsePace(const std::string& text);

/// Detects the format (PACE if a 'p htd' header is present) and parses.
util::StatusOr<Hypergraph> ParseAuto(const std::string& text);

/// Reads a file and parses it with ParseAuto.
util::StatusOr<Hypergraph> ParseFile(const std::string& path);

}  // namespace htd
