// Structural statistics of hypergraphs.
//
// Besides general reporting, these feed the hybridisation metrics of
// log-k-decomp (§D.2): EdgeCount = |E(H)| and
// WeightedCount = |E(H)| * k / avg-arity.
#pragma once

#include "hypergraph/hypergraph.h"

namespace htd {

struct HypergraphStats {
  int num_vertices = 0;
  int num_edges = 0;
  int max_arity = 0;
  double avg_arity = 0.0;
  int max_degree = 0;
  double avg_degree = 0.0;
};

HypergraphStats ComputeStats(const Hypergraph& graph);

}  // namespace htd
