// Dense two-phase primal simplex for small covering LPs.
//
// The fractional-cover LPs this library needs are tiny (variables = edges
// touching a bag, constraints = vertices of the bag; both rarely beyond a
// few dozen), so a textbook dense tableau with Bland's anti-cycling rule is
// the right tool: exact enough at double precision, fully deterministic, no
// external dependency.
//
// Problem form (covering):   minimize  c·x
//                            subject   A x ≥ b,   x ≥ 0,   b ≥ 0, c ≥ 0.
#pragma once

#include <vector>

namespace htd::fractional {

struct LpProblem {
  /// Objective coefficients c (one per variable), all ≥ 0.
  std::vector<double> objective;
  /// Constraint matrix rows; rows[i][j] multiplies x_j in constraint i.
  std::vector<std::vector<double>> rows;
  /// Right-hand sides b, all ≥ 0; constraint i reads rows[i]·x ≥ rhs[i].
  std::vector<double> rhs;
};

struct LpSolution {
  bool feasible = false;
  double objective_value = 0.0;
  std::vector<double> x;
};

/// Solves the covering LP; CHECK-fails on malformed input (ragged rows,
/// negative b or c). Always terminates (Bland's rule).
LpSolution SolveCoveringLp(const LpProblem& problem);

}  // namespace htd::fractional
