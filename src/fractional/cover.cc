#include "fractional/cover.h"

#include <algorithm>

#include "fractional/simplex.h"
#include "util/logging.h"

namespace htd::fractional {

FractionalCover FractionalEdgeCover(const Hypergraph& graph,
                                    const util::DynamicBitset& vertices) {
  FractionalCover cover;
  if (vertices.None()) {
    cover.weight = 0.0;
    return cover;
  }

  // Variables: edges intersecting S (others can never help).
  std::vector<int> edge_ids;
  for (int e = 0; e < graph.num_edges(); ++e) {
    if (graph.edge_vertices(e).Intersects(vertices)) edge_ids.push_back(e);
  }

  LpProblem problem;
  problem.objective.assign(edge_ids.size(), 1.0);
  std::vector<int> vertex_list = vertices.ToVector();
  for (int v : vertex_list) {
    std::vector<double> row(edge_ids.size(), 0.0);
    bool coverable = false;
    for (size_t j = 0; j < edge_ids.size(); ++j) {
      if (graph.edge_vertices(edge_ids[j]).Test(v)) {
        row[j] = 1.0;
        coverable = true;
      }
    }
    if (!coverable) return cover;  // vertex in no edge: uncoverable
    problem.rows.push_back(std::move(row));
    problem.rhs.push_back(1.0);
  }

  LpSolution solution = SolveCoveringLp(problem);
  HTD_CHECK(solution.feasible) << "covering LP with coverable vertices "
                                  "must be feasible";
  cover.weight = solution.objective_value;
  for (size_t j = 0; j < edge_ids.size(); ++j) {
    if (solution.x[j] > 1e-9) cover.edge_weights.emplace_back(edge_ids[j], solution.x[j]);
  }
  return cover;
}

double FractionalCoverWeight(const Hypergraph& graph,
                             const util::DynamicBitset& vertices) {
  return FractionalEdgeCover(graph, vertices).weight;
}

std::vector<int> GreedyIntegralCover(const Hypergraph& graph,
                                     const util::DynamicBitset& vertices) {
  std::vector<int> cover;
  util::DynamicBitset uncovered = vertices;
  while (uncovered.Any()) {
    int best_edge = -1;
    int best_gain = 0;
    for (int e = 0; e < graph.num_edges(); ++e) {
      const int gain = (graph.edge_vertices(e) & uncovered).Count();
      if (gain > best_gain) {
        best_gain = gain;
        best_edge = e;
      }
    }
    HTD_CHECK_NE(best_edge, -1) << "uncoverable vertex set";
    cover.push_back(best_edge);
    uncovered.InplaceAndNot(graph.edge_vertices(best_edge));
  }
  std::sort(cover.begin(), cover.end());
  return cover;
}

double FractionalWidth(const Hypergraph& graph, const Decomposition& decomp) {
  double width = 0.0;
  for (int u = 0; u < decomp.num_nodes(); ++u) {
    width = std::max(width, FractionalCoverWeight(graph, decomp.node(u).chi));
  }
  return width;
}

}  // namespace htd::fractional
