#include "fractional/fhd_solver.h"

#include <cmath>
#include <unordered_map>
#include <vector>

#include "decomp/components.h"
#include "decomp/fragment.h"
#include "decomp/special_edges.h"
#include "decomp/validation.h"
#include "fractional/cover.h"
#include "util/combinations.h"
#include "util/timer.h"

namespace htd::fractional {
namespace {

constexpr double kWidthTolerance = 1e-7;

enum class FhdStatus { kFound, kNotFound, kStopped };

class FhdEngine {
 public:
  FhdEngine(const Hypergraph& graph, double width, int max_lambda,
            const SolveOptions& options, StatsCounters& stats)
      : graph_(graph),
        registry_(graph.num_vertices()),
        width_(width),
        max_lambda_(max_lambda),
        options_(options),
        stats_(stats) {}

  FhdStatus Decompose(const ExtendedSubhypergraph& comp,
                      const util::DynamicBitset& conn, int depth,
                      Fragment& fragment, int parent_node) {
    stats_.recursive_calls.fetch_add(1, std::memory_order_relaxed);
    stats_.UpdateMaxDepth(depth);
    if (ShouldStop()) return FhdStatus::kStopped;

    const util::DynamicBitset vertices = VerticesOf(graph_, registry_, comp);

    // Base case: the whole component as one bag, if the LP allows it. This
    // needs no λ bound — the bag is V(comp), covered fractionally.
    if (CachedRho(vertices) <= width_ + kWidthTolerance) {
      int node = fragment.AddNode(comp.edges.ToVector(), vertices);
      Attach(fragment, node, parent_node);
      return FhdStatus::kFound;
    }

    const int total = comp.size();
    std::vector<int> candidates;
    comp.edges.ForEach([&](int e) { candidates.push_back(e); });
    const int num_own = static_cast<int>(candidates.size());
    for (int e = 0; e < graph_.num_edges(); ++e) {
      if (!comp.edges.Test(e) && graph_.edge_vertices(e).Intersects(vertices)) {
        candidates.push_back(e);
      }
    }
    const int n = static_cast<int>(candidates.size());

    // Pass 1: balanced separators (logarithmic recursion); pass 2: any
    // separator covering Conn with at least one component edge (progress
    // guarantees termination) — same discipline as the GHD stand-in.
    for (bool require_balanced : {true, false}) {
      const int first_limit = require_balanced ? n : num_own;
      std::vector<int> lambda;
      for (const util::SubsetChunk& chunk :
           util::MakeSubsetChunks(n, max_lambda_, first_limit)) {
        util::FixedFirstEnumerator enumerator(n, chunk.size, chunk.first);
        while (enumerator.Next()) {
          if (ShouldStop()) return FhdStatus::kStopped;
          stats_.separators_tried.fetch_add(1, std::memory_order_relaxed);
          lambda.clear();
          for (int idx : enumerator.indices()) lambda.push_back(candidates[idx]);
          util::DynamicBitset lambda_union = graph_.UnionOfEdges(lambda);
          if (!conn.IsSubsetOf(lambda_union)) continue;

          util::DynamicBitset chi = lambda_union & vertices;
          // The fractional feasibility test replacing |λ| ≤ k. The λ-set
          // only *shapes* the bag; the LP may cover it with other edges at
          // fractional weights.
          if (CachedRho(chi) > width_ + kWidthTolerance) continue;

          ComponentSplit split = SplitComponents(graph_, registry_, comp, chi);
          if (require_balanced && split.MaxComponentSize() * 2 > total) continue;

          const int checkpoint = fragment.num_nodes();
          int node = fragment.AddNode(lambda, chi);
          bool ok = true;
          for (size_t i = 0; i < split.components.size() && ok; ++i) {
            util::DynamicBitset child_conn = split.component_vertices[i] & chi;
            FhdStatus sub = Decompose(split.components[i], child_conn, depth + 1,
                                      fragment, node);
            if (sub == FhdStatus::kStopped) return sub;
            if (sub == FhdStatus::kNotFound) ok = false;
          }
          if (!ok) {
            fragment.TruncateTo(checkpoint);
            continue;
          }
          Attach(fragment, node, parent_node);
          return FhdStatus::kFound;
        }
      }
    }
    return FhdStatus::kNotFound;
  }

 private:
  static void Attach(Fragment& fragment, int node, int parent_node) {
    if (parent_node >= 0) {
      fragment.AddChild(parent_node, node);
    } else {
      fragment.SetRoot(node);
    }
  }

  /// ρ*(S) with memoisation: identical bags recur across branches and the
  /// simplex is the expensive step here.
  double CachedRho(const util::DynamicBitset& vertex_set) {
    auto it = rho_cache_.find(vertex_set);
    if (it != rho_cache_.end()) {
      stats_.cache_hits.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
    double rho = FractionalCoverWeight(graph_, vertex_set);
    rho_cache_.emplace(vertex_set, rho);
    return rho;
  }

  bool ShouldStop() const {
    return options_.cancel != nullptr && options_.cancel->ShouldStop();
  }

  const Hypergraph& graph_;
  SpecialEdgeRegistry registry_;
  const double width_;
  const int max_lambda_;
  const SolveOptions& options_;
  StatsCounters& stats_;
  std::unordered_map<util::DynamicBitset, double, util::DynamicBitsetHash>
      rho_cache_;
};

}  // namespace

FhdResult FhdSolver::Solve(const Hypergraph& graph, double width) {
  HTD_CHECK_GE(width, 1.0) << "fractional width below 1 is impossible";
  util::WallTimer timer;
  FhdResult result;
  if (graph.num_edges() == 0) {
    result.outcome = Outcome::kYes;
    result.decomposition = Decomposition();
    result.fractional_width = 0.0;
    return result;
  }

  int max_lambda = options_.max_lambda;
  if (max_lambda <= 0) {
    max_lambda = std::max(2, static_cast<int>(std::ceil(2.0 * width)));
  }

  StatsCounters counters;
  FhdEngine engine(graph, width, max_lambda, options_.base, counters);
  ExtendedSubhypergraph full = ExtendedSubhypergraph::FullGraph(graph);
  util::DynamicBitset empty_conn(graph.num_vertices());
  Fragment fragment;
  FhdStatus status =
      engine.Decompose(full, empty_conn, 0, fragment, /*parent_node=*/-1);

  result.stats = counters.Snapshot();
  result.stats.seconds = timer.ElapsedSeconds();
  switch (status) {
    case FhdStatus::kStopped:
      result.outcome = Outcome::kCancelled;
      break;
    case FhdStatus::kNotFound:
      result.outcome = Outcome::kNo;  // relative to the bag family, see header
      break;
    case FhdStatus::kFound: {
      result.outcome = Outcome::kYes;
      result.decomposition = fragment.ToDecomposition();
      result.fractional_width = FractionalWidth(graph, *result.decomposition);
      if (options_.base.validate_result) {
        Validation validation = ValidateGhd(graph, *result.decomposition);
        if (!validation.ok || result.fractional_width > width + 1e-6) {
          result.outcome = Outcome::kError;
          result.decomposition.reset();
        }
      }
      break;
    }
  }
  return result;
}

}  // namespace htd::fractional
