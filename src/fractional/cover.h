// Fractional edge covers and fractional widths (Grohe & Marx).
//
// ρ*(S), the fractional edge-cover number of a vertex set S, is the optimum
// of the LP  min Σ_e x_e  s.t.  Σ_{e ∋ v} x_e ≥ 1 for every v ∈ S, x ≥ 0.
// The fractional hypertree width fhw(H) is the minimum over decompositions
// of max_u ρ*(χ(u)); since every λ-label is an integral cover of its bag,
// every HD/GHD of width k witnesses fhw ≤ k — which is the chain
// fhw ≤ ghw ≤ hw the paper cites. This module evaluates ρ* exactly (via the
// in-house simplex) and reports the fractional width of any decomposition,
// i.e. the quantity BalancedGo's FHD mode optimises; the tests pin known
// closed forms (cliques n/2, odd cycles n/2, Fano plane 7/3).
#pragma once

#include <vector>

#include "decomp/decomposition.h"
#include "hypergraph/hypergraph.h"
#include "util/bitset.h"

namespace htd::fractional {

struct FractionalCover {
  /// Optimal LP value ρ*(S); -1 if S is uncoverable (a vertex in no edge —
  /// cannot happen for vertex sets of a well-formed hypergraph).
  double weight = -1.0;
  /// Edge id and its (non-zero) weight in an optimal cover.
  std::vector<std::pair<int, double>> edge_weights;
};

/// Exact ρ*(S) with an optimal cover. Only edges intersecting S enter the LP.
FractionalCover FractionalEdgeCover(const Hypergraph& graph,
                                    const util::DynamicBitset& vertices);

/// Convenience: just the weight ρ*(S).
double FractionalCoverWeight(const Hypergraph& graph,
                             const util::DynamicBitset& vertices);

/// Greedy integral edge cover of S (largest-marginal-coverage rule): an upper
/// bound on ρ(S) with the usual ln-factor guarantee; ρ*(S) ≤ ρ(S) always.
std::vector<int> GreedyIntegralCover(const Hypergraph& graph,
                                     const util::DynamicBitset& vertices);

/// max_u ρ*(χ(u)) — the fractional width of a decomposition. For any HD/GHD
/// this is ≤ its (integral) width; the gap measures how much an FHD solver
/// could save on the same tree.
double FractionalWidth(const Hypergraph& graph, const Decomposition& decomp);

}  // namespace htd::fractional
