// Fractional hypertree decompositions: a balanced-separator search where
// bag feasibility is "ρ*(χ) ≤ w" instead of "|λ| ≤ k".
//
// This is the fractional mode the paper's §5.1 alludes to ("the tested
// implementations include the capability to compute GHDs or FHDs"). The
// search mirrors the BalancedGo stand-in (baselines/balsep_ghd.*): pick a
// set λ of up to `max_lambda` edges, take χ = ⋃λ ∩ V(comp), accept if the
// fractional edge-cover LP certifies ρ*(χ) ≤ w, recurse into the
// [χ]-components (balanced first, arbitrary fallback). The base case accepts
// a whole component as one bag when ρ*(V(comp)) ≤ w — this is where
// fractional width genuinely beats integral width (e.g. K5: one bag of
// weight 5/2 < hw(K5) = 3).
//
// Soundness: every returned decomposition is a valid GHD whose fractional
// width (max_u ρ*(χ(u))) is ≤ w — tests verify both. Completeness: like
// BalancedGo's fractional mode, the search only considers bags that are
// unions of ≤ max_lambda edges restricted to the component, so it can miss
// FHDs needing other bag shapes; a "no" is exhaustive only relative to that
// bag family. Deciding fhw ≤ w exactly is NP-hard already for constant
// widths [15], so every practical FHD tool draws a line of this kind.
#pragma once

#include <optional>

#include "core/solver.h"
#include "decomp/decomposition.h"
#include "hypergraph/hypergraph.h"

namespace htd::fractional {

struct FhdOptions {
  /// Cancellation/validation plumbing shared with the HD solvers.
  SolveOptions base;
  /// Bag-family bound: bags are unions of at most this many edges.
  /// 0 = automatic (⌈2w⌉, never below 2).
  int max_lambda = 0;
};

struct FhdResult {
  Outcome outcome = Outcome::kCancelled;
  std::optional<Decomposition> decomposition;
  /// max_u ρ*(χ(u)) of the returned decomposition (kYes only).
  double fractional_width = -1.0;
  SolveStats stats;
};

class FhdSolver {
 public:
  explicit FhdSolver(FhdOptions options = {}) : options_(options) {}

  /// Searches for an FHD of fractional width ≤ w (w ≥ 1).
  FhdResult Solve(const Hypergraph& graph, double width);

 private:
  FhdOptions options_;
};

}  // namespace htd::fractional
