#include "fractional/simplex.h"

#include <cmath>
#include <limits>

#include "util/logging.h"

namespace htd::fractional {
namespace {

constexpr double kEps = 1e-9;

/// Canonical-form tableau: m rows over n_total columns plus RHS, with a
/// basis column per row. Costs are swapped between the two phases.
class Tableau {
 public:
  Tableau(const LpProblem& problem)
      : m_(static_cast<int>(problem.rows.size())),
        n_(static_cast<int>(problem.objective.size())),
        total_(n_ + 2 * m_),
        cells_(m_, std::vector<double>(total_ + 1, 0.0)),
        basis_(m_) {
    // Layout: [x_0..x_{n-1} | surplus s_0..s_{m-1} | artificial a_0..a_{m-1}].
    for (int i = 0; i < m_; ++i) {
      HTD_CHECK_EQ(static_cast<int>(problem.rows[i].size()), n_)
          << "ragged LP row " << i;
      HTD_CHECK_GE(problem.rhs[i], 0.0) << "covering LP needs b >= 0";
      for (int j = 0; j < n_; ++j) cells_[i][j] = problem.rows[i][j];
      cells_[i][n_ + i] = -1.0;       // surplus: Ax - s = b
      cells_[i][n_ + m_ + i] = 1.0;   // artificial basis
      cells_[i][total_] = problem.rhs[i];
      basis_[i] = n_ + m_ + i;
    }
  }

  /// Runs simplex iterations for the given column costs until optimal.
  /// Only columns < max_entering may enter the basis (phase 2 excludes the
  /// artificials this way).
  void Minimize(const std::vector<double>& cost, int max_entering) {
    while (true) {
      int entering = -1;
      for (int j = 0; j < max_entering; ++j) {  // Bland: lowest index first
        if (ReducedCost(cost, j) < -kEps) {
          entering = j;
          break;
        }
      }
      if (entering == -1) return;  // optimal

      int leaving = -1;
      double best_ratio = std::numeric_limits<double>::infinity();
      for (int i = 0; i < m_; ++i) {
        if (cells_[i][entering] <= kEps) continue;
        double ratio = cells_[i][total_] / cells_[i][entering];
        // Bland tie-break: smallest basis index among minimal ratios.
        if (ratio < best_ratio - kEps ||
            (ratio < best_ratio + kEps &&
             (leaving == -1 || basis_[i] < basis_[leaving]))) {
          best_ratio = ratio;
          leaving = i;
        }
      }
      // A covering LP with c >= 0 is bounded below by 0, so an unbounded ray
      // would indicate a programming error.
      HTD_CHECK_NE(leaving, -1) << "covering LP cannot be unbounded";
      Pivot(leaving, entering);
    }
  }

  double ObjectiveValue(const std::vector<double>& cost) const {
    double value = 0.0;
    for (int i = 0; i < m_; ++i) value += cost[basis_[i]] * cells_[i][total_];
    return value;
  }

  std::vector<double> ExtractPrimal() const {
    std::vector<double> x(n_, 0.0);
    for (int i = 0; i < m_; ++i) {
      if (basis_[i] < n_) x[basis_[i]] = cells_[i][total_];
    }
    return x;
  }

  /// Pivots any artificial variable still basic (at level 0 after a feasible
  /// phase 1) out of the basis; rows that are entirely zero over the real
  /// columns are redundant constraints and may keep their artificial — no
  /// later pivot can touch them.
  void EvictArtificials() {
    for (int i = 0; i < m_; ++i) {
      if (basis_[i] < n_ + m_) continue;
      for (int j = 0; j < n_ + m_; ++j) {
        if (std::fabs(cells_[i][j]) > kEps) {
          Pivot(i, j);
          break;
        }
      }
    }
  }

  int num_vars() const { return n_; }
  int num_rows() const { return m_; }
  int total_cols() const { return total_; }

 private:
  double ReducedCost(const std::vector<double>& cost, int j) const {
    double reduced = cost[j];
    for (int i = 0; i < m_; ++i) reduced -= cost[basis_[i]] * cells_[i][j];
    return reduced;
  }

  void Pivot(int row, int col) {
    const double pivot = cells_[row][col];
    for (int j = 0; j <= total_; ++j) cells_[row][j] /= pivot;
    for (int i = 0; i < m_; ++i) {
      if (i == row || std::fabs(cells_[i][col]) < kEps) continue;
      const double factor = cells_[i][col];
      for (int j = 0; j <= total_; ++j) cells_[i][j] -= factor * cells_[row][j];
    }
    basis_[row] = col;
  }

  int m_, n_, total_;
  std::vector<std::vector<double>> cells_;
  std::vector<int> basis_;
};

}  // namespace

LpSolution SolveCoveringLp(const LpProblem& problem) {
  HTD_CHECK_EQ(problem.rows.size(), problem.rhs.size());
  for (double c : problem.objective) HTD_CHECK_GE(c, 0.0);

  LpSolution solution;
  if (problem.rows.empty()) {  // nothing to cover: x = 0 is optimal
    solution.feasible = true;
    solution.x.assign(problem.objective.size(), 0.0);
    return solution;
  }

  Tableau tableau(problem);
  const int n = tableau.num_vars();
  const int m = tableau.num_rows();

  // Phase 1: minimize the artificial sum; > 0 means infeasible.
  std::vector<double> phase1(tableau.total_cols(), 0.0);
  for (int j = n + m; j < tableau.total_cols(); ++j) phase1[j] = 1.0;
  tableau.Minimize(phase1, /*max_entering=*/n + m);
  if (tableau.ObjectiveValue(phase1) > 1e-7) return solution;  // infeasible
  tableau.EvictArtificials();

  // Phase 2: the real objective; artificials cannot re-enter the basis.
  std::vector<double> phase2(tableau.total_cols(), 0.0);
  for (int j = 0; j < n; ++j) phase2[j] = problem.objective[j];
  tableau.Minimize(phase2, /*max_entering=*/n + m);

  solution.feasible = true;
  solution.x = tableau.ExtractPrimal();
  solution.objective_value = 0.0;
  for (int j = 0; j < n; ++j) {
    solution.objective_value += problem.objective[j] * solution.x[j];
  }
  return solution;
}

}  // namespace htd::fractional
